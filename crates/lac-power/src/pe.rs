//! PE / core / chip aggregation (§3.6, §4.4 — Table 3.1, Figures 3.6, 3.7,
//! 4.7–4.12).

use crate::components::{FmacModel, Precision, BUS_AREA_MM2_PER_PE, RF_AREA_MM2};
use crate::sram::SramModel;

/// Model of one PE: FMAC + local store + bus share + register file.
#[derive(Clone, Copy, Debug)]
pub struct PeModel {
    pub precision: Precision,
    /// Local store per PE in bytes (split A+B memories modeled as one
    /// dual-ported array, as Table 3.1 does).
    pub local_store_bytes: usize,
    /// Average SRAM accesses per cycle during GEMM (A read every nr cycles,
    /// B read every cycle ⇒ ~1.25 for nr = 4).
    pub sram_activity: f64,
    /// Idle power fraction (§1.3.3).
    pub idle_ratio: f64,
}

impl Default for PeModel {
    fn default() -> Self {
        Self {
            precision: Precision::Double,
            local_store_bytes: 16 * 1024,
            sram_activity: 1.25,
            idle_ratio: 0.25,
        }
    }
}

/// Evaluated PE metrics (one row of Table 3.1).
#[derive(Clone, Copy, Debug)]
pub struct PeMetrics {
    pub freq_ghz: f64,
    pub area_mm2: f64,
    pub memory_mw: f64,
    pub fmac_mw: f64,
    pub pe_mw: f64,
    pub w_per_mm2: f64,
    pub gflops: f64,
    pub gflops_per_mm2: f64,
    pub gflops_per_w: f64,
    /// Inverse energy-delay: GFLOPS²/W (§3.6's selection metric).
    pub gflops2_per_w: f64,
}

impl PeModel {
    pub fn sram(&self) -> SramModel {
        SramModel::new(self.local_store_bytes, 2)
    }

    pub fn fmac(&self) -> FmacModel {
        FmacModel::new(self.precision)
    }

    pub fn area_mm2(&self) -> f64 {
        self.fmac().area_mm2() + self.sram().area_mm2() + BUS_AREA_MM2_PER_PE + RF_AREA_MM2
    }

    /// Evaluate at a clock frequency (a Table 3.1 row).
    pub fn metrics(&self, freq_ghz: f64) -> PeMetrics {
        let fmac_mw = self.fmac().power_mw(freq_ghz);
        let memory_mw =
            self.sram().power_mw(freq_ghz, self.sram_activity) + self.sram().leakage_mw();
        let dynamic = fmac_mw + memory_mw;
        let pe_mw = dynamic * (1.0 + self.idle_ratio * 0.4);
        // (idle applies to un-utilized periods; during GEMM the PE is ~fully
        // active, leaving a smaller idle contribution)
        let area = self.area_mm2();
        let gflops = 2.0 * freq_ghz;
        PeMetrics {
            freq_ghz,
            area_mm2: area,
            memory_mw,
            fmac_mw,
            pe_mw,
            w_per_mm2: pe_mw / 1000.0 / area,
            gflops,
            gflops_per_mm2: gflops / area,
            gflops_per_w: gflops / (pe_mw / 1000.0),
            gflops2_per_w: gflops * gflops / (pe_mw / 1000.0),
        }
    }

    /// Energy-delay metric (lower is better): `W / GFLOPS²`.
    pub fn energy_delay(&self, freq_ghz: f64) -> f64 {
        1.0 / self.metrics(freq_ghz).gflops2_per_w
    }
}

/// Core- and chip-level aggregate metrics.
#[derive(Clone, Copy, Debug)]
pub struct CoreMetrics {
    pub num_pes: usize,
    pub area_mm2: f64,
    pub power_w: f64,
    pub gflops: f64,
    pub gflops_per_w: f64,
    pub gflops_per_mm2: f64,
}

/// Aggregate `nr × nr` PEs into a core at a given utilization.
pub fn core_metrics(pe: &PeModel, nr: usize, freq_ghz: f64, utilization: f64) -> CoreMetrics {
    let m = pe.metrics(freq_ghz);
    let n = nr * nr;
    let power_w = m.pe_mw * n as f64 / 1000.0;
    let gflops = m.gflops * n as f64 * utilization;
    let area = m.area_mm2 * n as f64;
    CoreMetrics {
        num_pes: n,
        area_mm2: area,
        power_w,
        gflops,
        gflops_per_w: gflops / power_w,
        gflops_per_mm2: gflops / area,
    }
}

/// Chip metrics: `s` cores plus a shared on-chip SRAM of `onchip_bytes`
/// accessed `onchip_accesses_per_cycle` words/cycle (Figures 4.9/4.10).
pub fn chip_metrics(
    pe: &PeModel,
    nr: usize,
    s: usize,
    freq_ghz: f64,
    utilization: f64,
    onchip_bytes: usize,
    onchip_accesses_per_cycle: f64,
) -> CoreMetrics {
    let core = core_metrics(pe, nr, freq_ghz, utilization);
    let mem = SramModel::new(onchip_bytes, 2);
    let mem_w = (mem.power_mw(freq_ghz, onchip_accesses_per_cycle) + mem.leakage_mw()) / 1000.0;
    let power_w = core.power_w * s as f64 + mem_w;
    let area = core.area_mm2 * s as f64 + mem.area_mm2();
    let gflops = core.gflops * s as f64;
    CoreMetrics {
        num_pes: core.num_pes * s,
        area_mm2: area,
        power_w,
        gflops,
        gflops_per_w: gflops / power_w,
        gflops_per_mm2: gflops / area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_1_dp_row_at_1ghz() {
        // Table 3.1's DP 0.95 GHz row: PE 38 mW, ≈46 GFLOPS/W, area ≈0.17 mm².
        let pe = PeModel::default();
        let m = pe.metrics(0.95);
        assert!((m.pe_mw - 38.0).abs() < 8.0, "PE power {}", m.pe_mw);
        assert!(
            (m.gflops_per_w - 46.4).abs() < 10.0,
            "GFLOPS/W {}",
            m.gflops_per_w
        );
        assert!((m.area_mm2 - 0.174).abs() < 0.03, "area {}", m.area_mm2);
    }

    #[test]
    fn table_3_1_sp_row_at_1ghz() {
        // SP 0.98 GHz row: 15.9 mW, 113 GFLOPS/W.
        let pe = PeModel {
            precision: Precision::Single,
            ..Default::default()
        };
        let m = pe.metrics(0.98);
        assert!((m.pe_mw - 15.9).abs() < 4.0, "PE power {}", m.pe_mw);
        assert!(
            (m.gflops_per_w - 113.0).abs() < 25.0,
            "GFLOPS/W {}",
            m.gflops_per_w
        );
    }

    #[test]
    fn one_ghz_is_the_sweet_spot() {
        // Figure 3.6: energy-delay still falling at 1 GHz, power efficiency
        // already high; past ~1.8 GHz efficiency collapses.
        let pe = PeModel {
            precision: Precision::Single,
            ..Default::default()
        };
        assert!(
            pe.energy_delay(1.0) < pe.energy_delay(0.3),
            "E-D falls toward 1 GHz"
        );
        let eff_1 = pe.metrics(1.0).gflops_per_w;
        let eff_2 = pe.metrics(2.0).gflops_per_w;
        assert!(eff_1 > eff_2, "efficiency drops at high frequency");
    }

    #[test]
    fn abstract_claim_dp_core_efficiency() {
        // §3.6: "a 4×4 LAP core ... ~45 double-precision GFLOPS/W at 1 GHz"
        // and the abstract's "up to 25 GFLOPS/W DP achievable on a chip".
        let pe = PeModel::default();
        let core = core_metrics(&pe, 4, 1.0, 0.95);
        assert!(
            core.gflops_per_w > 35.0 && core.gflops_per_w < 60.0,
            "{}",
            core.gflops_per_w
        );
        let chip = chip_metrics(&pe, 4, 15, 1.4, 0.9, 5 * 1024 * 1024, 4.0);
        assert!(
            chip.gflops_per_w > 15.0 && chip.gflops_per_w < 40.0,
            "{}",
            chip.gflops_per_w
        );
        assert!(
            chip.gflops > 400.0,
            "600-GFLOPS-class chip, got {}",
            chip.gflops
        );
    }

    #[test]
    fn most_pe_area_is_local_store() {
        // §3.6: "the power density is significantly lower as most of the LAC
        // area is used for the local store" (Figure 4.7: up to 2/3).
        let pe = PeModel::default();
        let store_frac = pe.sram().area_mm2() / pe.area_mm2();
        assert!(store_frac > 0.6, "store fraction {}", store_frac);
    }

    #[test]
    fn smaller_store_lower_power_higher_density() {
        // Figure 4.8: smaller local stores consume less power per PE...
        let small = PeModel {
            local_store_bytes: 4 * 1024,
            ..Default::default()
        };
        let big = PeModel {
            local_store_bytes: 18 * 1024,
            ..Default::default()
        };
        assert!(small.metrics(1.0).pe_mw < big.metrics(1.0).pe_mw);
        // ...but power *density* rises (the §4.4 caveat).
        assert!(small.metrics(1.0).w_per_mm2 > big.metrics(1.0).w_per_mm2);
    }
}
