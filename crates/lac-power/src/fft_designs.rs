//! The three PE designs of Chapter 6.2 / Appendix B.4: dedicated linear
//! algebra, dedicated FFT, and the hybrid (Figures 6.8/6.9, B.11–B.13,
//! Tables 6.2/B.3).
//!
//! The LA PE pairs a large single-ported A memory with a small dual-ported
//! B memory; the FFT-optimized PE replaces them with two single-ported
//! SRAMs sized for butterfly working sets; the hybrid carries both port
//! configurations so it can run either workload with a small area premium.

use crate::components::{FmacModel, Precision, BUS_AREA_MM2_PER_PE, RF_AREA_MM2};
use crate::sram::SramModel;

/// One PE design point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeDesign {
    /// The baseline LAC PE (GEMM-optimal).
    DedicatedLinearAlgebra,
    /// FFT-optimized: two 8-byte-wide single-ported SRAMs.
    DedicatedFft,
    /// Both capabilities (Figure 6.8 right).
    Hybrid,
}

/// Evaluated design (one bar group of Figures B.11–B.13).
#[derive(Clone, Debug)]
pub struct PeDesignReport {
    pub design: PeDesign,
    pub area_mm2: f64,
    /// Power running GEMM at 1 GHz (mW); `None` if unsupported.
    pub la_power_mw: Option<f64>,
    /// Power running FFT at 1 GHz (mW); `None` if unsupported.
    pub fft_power_mw: Option<f64>,
    /// Worst-case (max) power at 1 GHz.
    pub max_power_mw: f64,
    /// GEMM efficiency, GFLOPS/W (2 flops/cycle/PE at 95% util).
    pub la_gflops_per_w: Option<f64>,
    /// FFT efficiency, GFLOPS/W (the radix-4 kernel sustains ~5/8 of MAC
    /// peak in useful FFT flops).
    pub fft_gflops_per_w: Option<f64>,
}

fn fmac() -> FmacModel {
    FmacModel::new(Precision::Double)
}

/// Build the three PE design reports at `f_ghz` (Appendix B.4).
pub fn fft_pe_designs(f_ghz: f64) -> Vec<PeDesignReport> {
    let fm = fmac();
    let fmac_mw = fm.power_mw(f_ghz);
    let base_area = fm.area_mm2() + BUS_AREA_MM2_PER_PE + RF_AREA_MM2;

    // LA PE: 12 KB single-ported A + 4 KB dual-ported B.
    let la_a = SramModel::new(12 * 1024, 1);
    let la_b = SramModel::new(4 * 1024, 2);
    // FFT PE: two 4 KB single-ported, 8-byte wide SRAMs.
    let fft_m = SramModel::new(4 * 1024, 1);
    // Hybrid: the LA stores, with the B memory's second port carrying the
    // FFT ping-pong traffic (Figure 6.8 right: "two 8-byte single-ported
    // SRAMs to contain matrix A").
    let hy_a = SramModel::new(12 * 1024, 1);
    let hy_b = SramModel::new(4 * 1024, 2);

    // Activity factors per workload (accesses/cycle/PE, from the kernels):
    // GEMM: A every nr cycles + B every cycle ≈ 1.25; FFT butterflies:
    // ~2 reads + 1 write per FMA cycle ≈ 2.6 across the two memories.
    let la_mem_mw = |a: &SramModel, b: &SramModel| {
        a.power_mw(f_ghz, 0.25) + b.power_mw(f_ghz, 1.0) + a.leakage_mw() + b.leakage_mw()
    };
    let fft_mem_mw_dedicated = 2.0 * fft_m.power_mw(f_ghz, 1.3) + 2.0 * fft_m.leakage_mw();
    let fft_mem_mw_hybrid = hy_a.power_mw(f_ghz, 1.0)
        + hy_b.power_mw(f_ghz, 1.6)
        + hy_a.leakage_mw()
        + hy_b.leakage_mw();

    let mk = |design: PeDesign, area: f64, la: Option<f64>, fft: Option<f64>| {
        let max_power = la.unwrap_or(0.0).max(fft.unwrap_or(0.0)) + fmac_mw;
        let la_p = la.map(|m| m + fmac_mw);
        let fft_p = fft.map(|m| m + fmac_mw);
        PeDesignReport {
            design,
            area_mm2: area,
            la_power_mw: la_p,
            fft_power_mw: fft_p,
            max_power_mw: max_power,
            la_gflops_per_w: la_p.map(|p| 2.0 * f_ghz * 0.95 / (p / 1000.0)),
            // FFT useful-flop rate: 5·n·log2 n over measured kernel cycles
            // ≈ 1.2 flops/cycle/PE for the 64-point kernel.
            fft_gflops_per_w: fft_p.map(|p| 1.2 * f_ghz / (p / 1000.0)),
        }
    };

    vec![
        mk(
            PeDesign::DedicatedLinearAlgebra,
            base_area + la_a.area_mm2() + la_b.area_mm2(),
            Some(la_mem_mw(&la_a, &la_b)),
            None,
        ),
        mk(
            PeDesign::DedicatedFft,
            base_area + 2.0 * fft_m.area_mm2(),
            None,
            Some(fft_mem_mw_dedicated),
        ),
        mk(
            PeDesign::Hybrid,
            base_area + hy_a.area_mm2() + hy_b.area_mm2() + 0.01, // mux/control overhead
            Some(la_mem_mw(&hy_a, &hy_b)),
            Some(fft_mem_mw_hybrid),
        ),
    ]
}

/// Table 6.2-style comparison: cache-contained DP FFT efficiency of the
/// hybrid core vs published alternatives (GFLOPS/W, 45 nm scaled).
#[derive(Clone, Debug)]
pub struct FftPlatformRow {
    pub name: &'static str,
    pub gflops_per_w: f64,
}

pub fn fft_platforms_table() -> Vec<FftPlatformRow> {
    let hybrid = fft_pe_designs(1.0)
        .into_iter()
        .find(|d| d.design == PeDesign::Hybrid)
        .and_then(|d| d.fft_gflops_per_w)
        .unwrap_or(0.0);
    vec![
        FftPlatformRow {
            name: "Intel quad-core (FFTW est.)",
            gflops_per_w: 0.35,
        },
        FftPlatformRow {
            name: "Cell BE (FFT on SPEs)",
            gflops_per_w: 2.0,
        },
        FftPlatformRow {
            name: "Nvidia GPU (cuFFT est.)",
            gflops_per_w: 1.5,
        },
        FftPlatformRow {
            name: "ClearSpeed CSX700",
            gflops_per_w: 3.0,
        },
        FftPlatformRow {
            name: "Hybrid LAC/FFT core (modeled)",
            gflops_per_w: hybrid,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_close_to_dedicated_la() {
        // Figure 6.9: "a Hybrid FFT/Linear Algebra core with minimum loss in
        // efficiency" — within ~10% of the dedicated design for GEMM.
        let designs = fft_pe_designs(1.0);
        let la = &designs[0];
        let hy = &designs[2];
        let (e_la, e_hy) = (la.la_gflops_per_w.unwrap(), hy.la_gflops_per_w.unwrap());
        assert!(
            e_hy > 0.85 * e_la,
            "hybrid {e_hy:.1} vs dedicated {e_la:.1}"
        );
    }

    #[test]
    fn dedicated_fft_pe_smallest() {
        let designs = fft_pe_designs(1.0);
        assert!(designs[1].area_mm2 < designs[0].area_mm2);
        assert!(
            designs[2].area_mm2 >= designs[0].area_mm2,
            "hybrid pays a premium"
        );
    }

    #[test]
    fn hybrid_fft_efficiency_order_of_magnitude_better() {
        // Abstract: "when compared to other conventional architectures for
        // ... FFT, our LAP is over an order of magnitude better in terms of
        // power efficiency" (vs CPUs).
        let rows = fft_platforms_table();
        let hybrid = rows.last().unwrap().gflops_per_w;
        let cpu = rows[0].gflops_per_w;
        assert!(hybrid > 10.0 * cpu, "hybrid {hybrid:.1} vs cpu {cpu:.2}");
    }

    #[test]
    fn max_power_at_least_each_workload() {
        for d in fft_pe_designs(1.0) {
            if let Some(p) = d.la_power_mw {
                assert!(d.max_power_mw >= p - 1e-9);
            }
            if let Some(p) = d.fft_power_mw {
                assert!(d.max_power_mw >= p - 1e-9);
            }
        }
    }
}
