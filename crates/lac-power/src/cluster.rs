//! Cluster-level energy: price a multi-chip [`ClusterStats`] the way
//! [`crate::ChipEnergyModel`] prices one chip's [`lac_sim::ChipStats`].
//!
//! A cluster run costs the sum of its chips' energy — each chip priced by
//! the per-chip model *over the shared cluster wall clock*, because a
//! chip whose cores finished early keeps its uncore powered until the
//! whole run retires — plus *interconnect* energy the chip model cannot
//! see: every word serialized over a chip-to-chip link pays a SerDes/PHY
//! premium per word (an order of magnitude above the on-chip
//! interconnect's), and each chip's link endpoint burns static power for
//! the whole makespan whether or not traffic flows.

use crate::chip::{ChipEnergy, ChipEnergyModel};
use lac_sim::ClusterStats;

/// Converts a cluster run's merged statistics into energy and power.
#[derive(Clone, Copy, Debug)]
pub struct ClusterEnergyModel {
    /// Per-chip pricing (every chip is priced by the same model).
    pub chip: ChipEnergyModel,
    /// Link energy per word moved between chips, pJ/word — SerDes,
    /// package crossing and PHY, on top of everything the chip model
    /// already counts.
    pub link_pj_per_word: f64,
    /// Static power of each chip's link endpoint (PLLs, always-on lanes),
    /// mW per chip, burned over the whole cluster makespan.
    pub link_static_mw_per_chip: f64,
}

impl ClusterEnergyModel {
    /// The deployment the cluster simulator models: LAP chips joined by a
    /// PCIe-class serial link. ~40 pJ/word across the package (5× the
    /// on-chip interconnect premium) and ~15 mW of always-on endpoint per
    /// chip.
    pub fn lap_default() -> Self {
        Self {
            chip: ChipEnergyModel::lap_default(),
            link_pj_per_word: 40.0,
            link_static_mw_per_chip: 15.0,
        }
    }

    /// Price one cluster run.
    ///
    /// Conserving by construction: each entry of
    /// [`ClusterEnergy::per_chip`] equals
    /// [`ChipEnergyModel::summarize_over`] of that chip's stats over the
    /// cluster makespan — the cluster model only *adds* the link terms,
    /// it never re-prices chip work.
    pub fn summarize(&self, stats: &ClusterStats) -> ClusterEnergy {
        let per_chip: Vec<ChipEnergy> = stats
            .per_chip
            .iter()
            .map(|c| self.chip.summarize_over(c, stats.makespan_cycles))
            .collect();
        let chips_nj: f64 = per_chip.iter().map(|e| e.total_nj).sum();

        let wall_s = stats.makespan_cycles as f64 / (self.chip.core.freq_ghz * 1e9);
        let link_nj = stats.transferred_words as f64 * self.link_pj_per_word / 1000.0
            + self.link_static_mw_per_chip * 1e-3 // mW → W
                * stats.per_chip.len() as f64
                * wall_s
                * 1e9; // J → nJ
        let total_nj = chips_nj + link_nj;

        let (avg_power_mw, gflops_per_w) = if stats.makespan_cycles == 0 {
            (0.0, 0.0)
        } else {
            let watts = total_nj * 1e-9 / wall_s;
            let gflops = stats.flops() as f64 / wall_s / 1e9;
            (watts * 1e3, gflops / watts)
        };

        ClusterEnergy {
            per_chip,
            chips_nj,
            link_nj,
            total_nj,
            avg_power_mw,
            gflops_per_w,
        }
    }
}

/// Energy/power of one cluster run, wall-clocked by the cluster makespan
/// (see [`ClusterEnergyModel::summarize`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterEnergy {
    /// Each chip's own summary, priced over the cluster makespan, in chip
    /// order.
    pub per_chip: Vec<ChipEnergy>,
    /// Sum of per-chip totals (cores + per-chip uncore), nJ.
    pub chips_nj: f64,
    /// Inter-chip link energy: per-word transfers + static endpoints, nJ.
    pub link_nj: f64,
    /// Whole-cluster energy, nJ.
    pub total_nj: f64,
    /// Cluster power averaged over the makespan, mW.
    pub avg_power_mw: f64,
    /// Cluster efficiency over the makespan, GFLOPS/W.
    pub gflops_per_w: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::{ChipStats, ExecStats};

    fn busy(cycles: u64) -> ExecStats {
        ExecStats {
            cycles,
            mac_ops: cycles * 16,
            sram_a_reads: cycles * 4,
            sram_b_reads: cycles * 16,
            ext_reads: cycles,
            active_cycles: cycles,
            ..Default::default()
        }
    }

    fn chip_stats(per_core: Vec<ExecStats>, makespan: u64) -> ChipStats {
        let mut aggregate = ExecStats::default();
        for s in &per_core {
            aggregate.merge(s);
        }
        let jobs_per_core = per_core.iter().map(|_| 1).collect();
        ChipStats {
            per_core,
            jobs_per_core,
            makespan_cycles: makespan,
            aggregate,
        }
    }

    fn cluster_stats(chips: usize, cycles: u64, words: u64) -> ClusterStats {
        let per_chip: Vec<ChipStats> = (0..chips)
            .map(|_| chip_stats(vec![busy(cycles); 2], cycles))
            .collect();
        let mut aggregate = ExecStats::default();
        for c in &per_chip {
            aggregate.merge(&c.aggregate);
        }
        ClusterStats {
            per_chip,
            makespan_cycles: cycles,
            transferred_words: words,
            transfer_cycles: words / 4,
            transfer_stall_cycles: 0,
            aggregate,
        }
    }

    #[test]
    fn totals_decompose_into_chips_plus_links() {
        let m = ClusterEnergyModel::lap_default();
        let e = m.summarize(&cluster_stats(3, 10_000, 5_000));
        assert_eq!(e.per_chip.len(), 3);
        assert!((e.total_nj - e.chips_nj - e.link_nj).abs() < 1e-9);
        assert!(e.link_nj > 0.0 && e.chips_nj > e.link_nj);
        assert!(e.avg_power_mw > 0.0 && e.gflops_per_w > 0.0);
    }

    #[test]
    fn per_chip_entries_conserve_the_chip_model() {
        // The cluster model must not re-price chip work: every per-chip
        // entry is exactly the chip model over the cluster wall clock.
        let m = ClusterEnergyModel::lap_default();
        let stats = cluster_stats(2, 10_000, 1_000);
        let e = m.summarize(&stats);
        for (chip, entry) in stats.per_chip.iter().zip(&e.per_chip) {
            assert_eq!(
                entry,
                &m.chip.summarize_over(chip, stats.makespan_cycles),
                "cluster pricing diverged from the chip model"
            );
        }
        let direct: f64 = e.per_chip.iter().map(|c| c.total_nj).sum();
        assert!((e.chips_nj - direct).abs() < 1e-9);
    }

    #[test]
    fn idle_links_still_pay_static_endpoint_power() {
        let m = ClusterEnergyModel::lap_default();
        let quiet = m.summarize(&cluster_stats(2, 10_000, 0));
        let chatty = m.summarize(&cluster_stats(2, 10_000, 100_000));
        assert!(quiet.link_nj > 0.0, "endpoints never sleep");
        let expected_transfer_nj = 100_000.0 * m.link_pj_per_word / 1000.0;
        assert!((chatty.link_nj - quiet.link_nj - expected_transfer_nj).abs() < 1e-6);
        assert_eq!(quiet.chips_nj, chatty.chips_nj, "chip work unchanged");
    }

    #[test]
    fn requeue_under_chip_loss_conserves_energy_accounting() {
        // Price a real faulted run: a chip dies mid-flight, its in-flight
        // wave is revoked (the work ran — the energy was burned) and its
        // jobs requeue onto the survivor. The accounting identities must
        // hold exactly as on the fault-free path: totals decompose into
        // chips + link, each per-chip entry is the chip model over the
        // shared makespan (the dead chip keeps paying static power to the
        // end), and the faulted run never costs less than the healthy one.
        use lac_sim::{
            ChipConfig, ClusterConfig, ExtOp, FaultPlan, JobGraph, LacCluster, LacConfig,
            ProgramBuilder, ProgramJob, Scheduler, Source,
        };
        // One external load + one MAC + idle padding: real FLOPs, so the
        // per-core efficiency terms stay finite (NaN never compares equal).
        let job = |extra: usize, cost: u64| {
            let cfg = LacConfig::default();
            let mut b = ProgramBuilder::new(cfg.nr);
            let t = b.push_step();
            b.ext(t, ExtOp::Load { col: 0, addr: 0 });
            b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
            let t = b.push_step();
            b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
            b.idle(cfg.fpu.pipeline_depth + extra);
            let mut j = ProgramJob::new(b.build());
            j.cost = cost;
            j
        };
        let graph = || -> JobGraph<ProgramJob> {
            let mut g = JobGraph::new();
            for k in 0..6 {
                let a = g.add(job(k, 4));
                let b1 = g.add_after(job(k + 1, 2), &[a]);
                g.add_after(job(k, 3), &[a, b1]);
            }
            g
        };
        let cfg = ClusterConfig::homogeneous(2, ChipConfig::new(2, LacConfig::default()));
        let mut healthy: LacCluster<ProgramJob> = LacCluster::new(cfg.clone());
        let base = healthy
            .run_graph(&graph(), Scheduler::CriticalPath)
            .unwrap();
        let mut faulty: LacCluster<ProgramJob> =
            LacCluster::new(cfg).with_fault_plan(FaultPlan::new().kill(1, 1));
        let run = faulty.run_graph(&graph(), Scheduler::CriticalPath).unwrap();
        assert_eq!(run.outputs, base.outputs, "fault must not change bits");

        let m = ClusterEnergyModel::lap_default();
        for (name, stats) in [("healthy", &base.stats), ("faulted", &run.stats)] {
            let e = m.summarize(stats);
            assert!(
                (e.total_nj - e.chips_nj - e.link_nj).abs() < 1e-9,
                "{name}: totals must decompose"
            );
            for (chip, entry) in stats.per_chip.iter().zip(&e.per_chip) {
                assert_eq!(
                    entry,
                    &m.chip.summarize_over(chip, stats.makespan_cycles),
                    "{name}: cluster pricing diverged from the chip model"
                );
            }
            let direct: f64 = e.per_chip.iter().map(|c| c.total_nj).sum();
            assert!((e.chips_nj - direct).abs() < 1e-9, "{name}");
        }
        let healthy_e = m.summarize(&base.stats);
        let faulted_e = m.summarize(&run.stats);
        assert!(
            faulted_e.total_nj >= healthy_e.total_nj,
            "revoked work stays metered and the makespan only grows: \
             {} nJ faulted vs {} nJ healthy",
            faulted_e.total_nj,
            healthy_e.total_nj
        );
    }

    #[test]
    fn doubling_chips_roughly_doubles_energy_at_equal_work_each() {
        let m = ClusterEnergyModel::lap_default();
        let e2 = m.summarize(&cluster_stats(2, 10_000, 0));
        let e4 = m.summarize(&cluster_stats(4, 10_000, 0));
        let ratio = e4.total_nj / e2.total_nj;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
        assert!((e4.gflops_per_w / e2.gflops_per_w - 1.0).abs() < 0.05);
    }
}
