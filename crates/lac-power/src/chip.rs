//! Chip-level energy: price a multi-core [`ChipStats`] the way
//! [`crate::EnergyModel`] prices a single core's [`lac_sim::ExecStats`].
//!
//! A chip run costs the sum of its cores' dynamic energy plus *uncore*
//! energy the per-core model cannot see: the shared on-chip memory
//! interconnect pays an arbitration/wire premium per word crossing a core
//! boundary, and the uncore (NUCA banks, clock spine, off-chip PHY) burns
//! static power for the whole makespan regardless of which cores are busy —
//! a core that finishes early stops issuing MACs but does not power down
//! the fabric around it.

use crate::energy::{EnergyModel, EnergySummary};
use lac_sim::ChipStats;

/// Converts a chip run's merged statistics into energy and power.
///
/// ```
/// use lac_power::ChipEnergyModel;
/// use lac_sim::{ChipStats, ExecStats};
///
/// // Two cores: one busy for 10k cycles, one idle — a dependency-stalled
/// // chip run as `LacChip::run_graph` would report it.
/// let busy = ExecStats {
///     cycles: 10_000,
///     mac_ops: 100_000,
///     sram_a_reads: 40_000,
///     ext_reads: 10_000,
///     active_cycles: 10_000,
///     ..Default::default()
/// };
/// let mut aggregate = ExecStats::default();
/// aggregate.merge(&busy);
/// let stats = ChipStats {
///     per_core: vec![busy, ExecStats::default()],
///     jobs_per_core: vec![1, 0],
///     makespan_cycles: 10_000,
///     aggregate,
/// };
///
/// let model = ChipEnergyModel::lap_default();
/// let e = model.summarize(&stats);
/// // Totals decompose into per-core dynamic energy plus the uncore.
/// assert!((e.total_nj - e.cores_nj - e.uncore_nj).abs() < 1e-9);
/// assert!(e.uncore_nj > 0.0, "the fabric never sleeps");
/// assert!(e.gflops_per_w > 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChipEnergyModel {
    /// Per-core pricing (every shard is identical).
    pub core: EnergyModel,
    /// Interconnect/arbitration premium per external word moved between a
    /// core and the shared on-chip memory, pJ/word (on top of the bank
    /// access energy the core model already counts).
    pub uncore_pj_per_word: f64,
    /// Static uncore power per core, mW — NUCA leakage, clock distribution
    /// and the off-chip interface, burned over the whole makespan.
    pub uncore_static_mw_per_core: f64,
}

impl ChipEnergyModel {
    /// The dissertation's chip context: LAC cores next to a NUCA on-chip
    /// memory. ~8 pJ/word of interconnect on top of the bank access and a
    /// few mW of always-on uncore per core slot.
    pub fn lap_default() -> Self {
        Self {
            core: EnergyModel::lac_default(),
            uncore_pj_per_word: 8.0,
            uncore_static_mw_per_core: 5.0,
        }
    }

    /// Price one chip run. Per-core entries line up with
    /// `stats.per_core`.
    pub fn summarize(&self, stats: &ChipStats) -> ChipEnergy {
        self.summarize_over(stats, stats.makespan_cycles)
    }

    /// Price chip work over an explicit wall clock — the door for
    /// long-lived sessions: a `lac_sim::LacService` accumulates busy
    /// counters across submissions while its clock also advances through
    /// dependency stalls and idle gaps *between* batches, and the static
    /// uncore burns for all of it. `summarize` is the single-run special
    /// case (`wall = makespan`). `wall_cycles` must cover the busy time.
    pub fn summarize_over(&self, stats: &ChipStats, wall_cycles: u64) -> ChipEnergy {
        assert!(
            stats.per_core.iter().all(|s| s.cycles <= wall_cycles),
            "wall clock shorter than a core's busy time"
        );
        let per_core: Vec<EnergySummary> = stats
            .per_core
            .iter()
            .map(|s| self.core.summarize(s))
            .collect();
        let cores_nj: f64 = per_core.iter().map(|e| e.energy_nj).sum();

        let words = (stats.aggregate.ext_reads + stats.aggregate.ext_writes) as f64;
        let makespan_s = wall_cycles as f64 / (self.core.freq_ghz * 1e9);
        let uncore_nj = words * self.uncore_pj_per_word / 1000.0
            + self.uncore_static_mw_per_core * 1e-3 // mW → W
                * stats.per_core.len() as f64
                * makespan_s
                * 1e9; // J → nJ
        let total_nj = cores_nj + uncore_nj;

        let (avg_power_mw, gflops_per_w) = if wall_cycles == 0 {
            (0.0, 0.0)
        } else {
            let watts = total_nj * 1e-9 / makespan_s;
            let gflops = stats.flops() as f64 / makespan_s / 1e9;
            (watts * 1e3, gflops / watts)
        };

        ChipEnergy {
            per_core,
            cores_nj,
            uncore_nj,
            total_nj,
            avg_power_mw,
            gflops_per_w,
        }
    }

    /// Attribute a multi-tenant service lifetime's energy to its tenants.
    ///
    /// `per_tenant` holds each tenant's accumulated busy stats (e.g.
    /// `lac_sim::LacService::tenant_busy_stats`), `cores` the chip's core
    /// count and `wall_cycles` the service clock. Each tenant pays
    ///
    /// * its own **dynamic** energy — the per-core model priced over its
    ///   jobs' events, plus the interconnect premium on its external
    ///   words — and
    /// * a share of the **static uncore** burned over the whole wall
    ///   clock, split in proportion to busy cycles (the tenant that used
    ///   the chip more owns more of the fabric kept powered for it). With
    ///   no busy cycles anywhere the static burn is split evenly.
    ///
    /// Attribution is conserving: when `per_tenant` partitions the work of
    /// a [`ChipEnergyModel::summarize_over`] call, the tenant totals sum
    /// to its `total_nj` (the per-event core model is linear in the
    /// counters).
    pub fn attribute(
        &self,
        per_tenant: &[lac_sim::ExecStats],
        cores: usize,
        wall_cycles: u64,
    ) -> Vec<TenantEnergy> {
        let wall_s = wall_cycles as f64 / (self.core.freq_ghz * 1e9);
        let static_nj = self.uncore_static_mw_per_core * 1e-3 * cores as f64 * wall_s * 1e9;
        let busy_total: u64 = per_tenant.iter().map(|s| s.cycles).sum();
        per_tenant
            .iter()
            .map(|s| {
                let words = (s.ext_reads + s.ext_writes) as f64;
                let dynamic_nj =
                    self.core.summarize(s).energy_nj + words * self.uncore_pj_per_word / 1000.0;
                let share = if busy_total == 0 {
                    1.0 / per_tenant.len().max(1) as f64
                } else {
                    s.cycles as f64 / busy_total as f64
                };
                let static_share_nj = static_nj * share;
                TenantEnergy {
                    dynamic_nj,
                    static_share_nj,
                    total_nj: dynamic_nj + static_share_nj,
                }
            })
            .collect()
    }
}

/// One tenant's attributed share of a service lifetime's energy (see
/// [`ChipEnergyModel::attribute`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TenantEnergy {
    /// Core events + interconnect words of this tenant's own jobs, nJ.
    pub dynamic_nj: f64,
    /// This tenant's share of the always-on uncore static burn, nJ.
    pub static_share_nj: f64,
    /// `dynamic_nj + static_share_nj`.
    pub total_nj: f64,
}

/// Energy/power of one chip queue run, wall-clocked by the makespan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChipEnergy {
    /// Each core's own summary (power averaged over that core's busy
    /// cycles), in core order.
    pub per_core: Vec<EnergySummary>,
    /// Sum of per-core dynamic energy, nJ.
    pub cores_nj: f64,
    /// Interconnect + static uncore energy, nJ.
    pub uncore_nj: f64,
    /// Whole-chip energy, nJ.
    pub total_nj: f64,
    /// Chip power averaged over the makespan, mW.
    pub avg_power_mw: f64,
    /// Chip efficiency over the makespan, GFLOPS/W.
    pub gflops_per_w: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_sim::ExecStats;

    fn busy(cycles: u64) -> ExecStats {
        ExecStats {
            cycles,
            mac_ops: cycles * 16,
            sram_a_reads: cycles * 4,
            sram_b_reads: cycles * 16,
            ext_reads: cycles,
            active_cycles: cycles,
            ..Default::default()
        }
    }

    fn chip_stats(per_core: Vec<ExecStats>) -> ChipStats {
        let mut aggregate = ExecStats::default();
        for s in &per_core {
            aggregate.merge(s);
        }
        let makespan_cycles = per_core.iter().map(|s| s.cycles).max().unwrap_or(0);
        let jobs_per_core = per_core.iter().map(|_| 1).collect();
        ChipStats {
            per_core,
            jobs_per_core,
            makespan_cycles,
            aggregate,
        }
    }

    #[test]
    fn totals_decompose_into_cores_plus_uncore() {
        let m = ChipEnergyModel::lap_default();
        let stats = chip_stats(vec![busy(10_000), busy(8_000)]);
        let e = m.summarize(&stats);
        assert_eq!(e.per_core.len(), 2);
        assert!((e.total_nj - e.cores_nj - e.uncore_nj).abs() < 1e-9);
        assert!(e.uncore_nj > 0.0 && e.cores_nj > e.uncore_nj);
        assert!(e.avg_power_mw > 0.0 && e.gflops_per_w > 0.0);
    }

    #[test]
    fn idle_chip_still_pays_static_uncore() {
        let m = ChipEnergyModel::lap_default();
        let idle = ExecStats {
            cycles: 10_000,
            ..Default::default()
        };
        let e = m.summarize(&chip_stats(vec![idle, idle]));
        assert_eq!(e.cores_nj, 0.0, "no events, no core energy");
        assert!(e.uncore_nj > 0.0, "the fabric never sleeps");
    }

    #[test]
    fn doubling_cores_roughly_doubles_energy_at_equal_work_each() {
        let m = ChipEnergyModel::lap_default();
        let e2 = m.summarize(&chip_stats(vec![busy(10_000); 2]));
        let e4 = m.summarize(&chip_stats(vec![busy(10_000); 4]));
        let ratio = e4.total_nj / e2.total_nj;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
        // Same makespan, twice the flops: double the power, same efficiency.
        assert!((e4.gflops_per_w / e2.gflops_per_w - 1.0).abs() < 0.05);
    }

    #[test]
    fn idle_between_batches_costs_static_energy_only() {
        // The same busy work priced over a 3x longer service clock: core
        // dynamic energy is unchanged, uncore grows by exactly the static
        // power over the extra wall time, efficiency drops.
        let m = ChipEnergyModel::lap_default();
        let stats = chip_stats(vec![busy(10_000); 2]);
        let tight = m.summarize_over(&stats, 10_000);
        let padded = m.summarize_over(&stats, 30_000);
        assert_eq!(tight.cores_nj, padded.cores_nj);
        let extra_s = 20_000.0 / (m.core.freq_ghz * 1e9);
        let expected_extra_nj = m.uncore_static_mw_per_core * 1e-3 * 2.0 * extra_s * 1e9;
        assert!((padded.uncore_nj - tight.uncore_nj - expected_extra_nj).abs() < 1e-6);
        assert!(padded.gflops_per_w < tight.gflops_per_w);
        // And summarize() is the wall = makespan special case.
        assert_eq!(m.summarize(&stats), tight);
    }

    #[test]
    #[should_panic(expected = "wall clock shorter")]
    fn wall_clock_cannot_undercut_busy_time() {
        let m = ChipEnergyModel::lap_default();
        m.summarize_over(&chip_stats(vec![busy(10_000)]), 5_000);
    }

    #[test]
    fn tenant_attribution_conserves_the_service_total() {
        // Two tenants partition a 2-core service's work 3:1; priced over a
        // padded wall clock, their attributed totals must sum exactly to
        // the chip summary (the core model is linear in the counters) and
        // split the static uncore 3:1.
        let m = ChipEnergyModel::lap_default();
        let stats = chip_stats(vec![busy(12_000), busy(4_000)]);
        let wall = 40_000;
        let whole = m.summarize_over(&stats, wall);
        let shares = m.attribute(&[busy(12_000), busy(4_000)], 2, wall);
        assert_eq!(shares.len(), 2);
        let sum: f64 = shares.iter().map(|t| t.total_nj).sum();
        assert!(
            (sum - whole.total_nj).abs() < 1e-6 * whole.total_nj,
            "attribution leaks energy: {sum} vs {}",
            whole.total_nj
        );
        assert!(
            (shares[0].static_share_nj / shares[1].static_share_nj - 3.0).abs() < 1e-9,
            "static split follows busy share"
        );
        assert!(shares[0].dynamic_nj > shares[1].dynamic_nj);
        for t in &shares {
            assert!((t.total_nj - t.dynamic_nj - t.static_share_nj).abs() < 1e-9);
        }
        // An all-idle service splits the static burn evenly.
        let idle = m.attribute(&[ExecStats::default(); 2], 2, wall);
        assert_eq!(idle[0], idle[1]);
        assert!(idle[0].static_share_nj > 0.0 && idle[0].dynamic_nj == 0.0);
    }

    #[test]
    fn chip_efficiency_stays_in_core_ballpark() {
        // Uncore overhead should cost a few percent, not change the
        // GFLOPS/W order of magnitude the single-core model reports.
        let m = ChipEnergyModel::lap_default();
        let core_eff = m.core.gflops_per_w(&busy(100_000));
        let chip_eff = m
            .summarize(&chip_stats(vec![busy(100_000); 4]))
            .gflops_per_w;
        assert!(chip_eff < core_eff, "uncore cannot be free");
        assert!(
            chip_eff > 0.7 * core_eff,
            "uncore should be a tax, not the bill"
        );
    }
}
