//! Component-level power/area models anchored at the paper's quoted data.

/// Arithmetic precision (duplicated from `lac-fpu` to keep this crate's
/// dependency surface minimal; conversion is trivial).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    Single,
    Double,
}

/// Process technology node (for the cross-platform scalings of §4.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Technology {
    Nm45,
    Nm65,
}

impl Technology {
    /// Dynamic-power scale factor relative to 45 nm (≈ linear in feature
    /// size at constant design, the scaling the paper applies).
    pub fn power_scale(self) -> f64 {
        match self {
            Technology::Nm45 => 1.0,
            Technology::Nm65 => 65.0 / 45.0,
        }
    }

    /// Idle power as a fraction of dynamic power (§1.3.3: 25–30%).
    pub fn idle_ratio(self) -> f64 {
        match self {
            Technology::Nm45 => 0.25,
            Technology::Nm65 => 0.30,
        }
    }
}

/// Fused multiply-accumulate unit model.
///
/// Fit to Table 3.1's FMAC column: power grows as `f^1.6` (frequency plus
/// the voltage scaling that comes with it), anchored at ~8.9 mW (SP) and
/// ~33.6 mW (DP) at 1 GHz, 45 nm.
#[derive(Clone, Copy, Debug)]
pub struct FmacModel {
    pub precision: Precision,
}

impl FmacModel {
    pub fn new(precision: Precision) -> Self {
        Self { precision }
    }

    /// Dynamic power in mW at `f_ghz`.
    pub fn power_mw(&self, f_ghz: f64) -> f64 {
        let p1 = match self.precision {
            Precision::Single => 8.9,
            Precision::Double => 33.6,
        };
        p1 * f_ghz.powf(1.6)
    }

    /// Area in mm² (45 nm).
    pub fn area_mm2(&self) -> f64 {
        match self.precision {
            Precision::Single => 0.01,
            Precision::Double => 0.04,
        }
    }

    /// Energy per MAC operation in pJ at `f_ghz` (power / throughput).
    pub fn energy_pj(&self, f_ghz: f64) -> f64 {
        self.power_mw(f_ghz) / f_ghz
    }
}

/// Register file: tiny (32 B, 2 ports) — §2.2.2 notes it is "bypassed in
/// most of the data transfers". ~1 pJ per access, 0.002 mm².
pub const RF_ENERGY_PJ: f64 = 1.0;
pub const RF_AREA_MM2: f64 = 0.002;

/// Broadcast bus: 0.023 mm² per PE (§3.6); wire energy per word-hop.
pub const BUS_AREA_MM2_PER_PE: f64 = 0.023;
pub const BUS_ENERGY_PJ_PER_WORD: f64 = 1.1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmac_matches_table_3_1_points() {
        // Table 3.1 FMAC column: SP {2.08 GHz: 32.3, 1.32: 13.4, 0.98: 8.7,
        // 0.5: 3.3} mW; DP {1.81: 105.5, 0.95: 31.0, 0.33: 6.0} mW.
        let sp = FmacModel::new(Precision::Single);
        for (f, mw) in [(2.08, 32.3), (1.32, 13.4), (0.98, 8.7), (0.5, 3.3)] {
            let got = sp.power_mw(f);
            assert!(
                (got / mw - 1.0).abs() < 0.15,
                "SP {f} GHz: {got:.1} vs {mw}"
            );
        }
        let dp = FmacModel::new(Precision::Double);
        for (f, mw) in [(1.81, 105.5), (0.95, 31.0), (0.33, 6.0)] {
            let got = dp.power_mw(f);
            assert!(
                (got / mw - 1.0).abs() < 0.25,
                "DP {f} GHz: {got:.1} vs {mw}"
            );
        }
    }

    #[test]
    fn dp_quoted_envelope_at_1ghz() {
        // §3.6: "40-50mW (at ≈1GHz and 0.8V)" — our anchor of 33.6 mW is the
        // Table 3.1-fit; the quoted envelope is reached slightly above 1 GHz.
        let dp = FmacModel::new(Precision::Double);
        assert!(dp.power_mw(1.1) > 30.0 && dp.power_mw(1.3) < 60.0);
    }

    #[test]
    fn energy_per_op_falls_with_frequency_reduction() {
        let dp = FmacModel::new(Precision::Double);
        assert!(dp.energy_pj(0.5) < dp.energy_pj(2.0));
    }

    #[test]
    fn technology_scaling() {
        assert!(Technology::Nm65.power_scale() > Technology::Nm45.power_scale());
        assert!(Technology::Nm45.idle_ratio() >= 0.25);
    }
}
