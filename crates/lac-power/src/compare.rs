//! Cross-platform comparisons (§4.5 — Tables 3.2, 4.2, 4.3; Figures
//! 4.13–4.16).
//!
//! Comparator numbers are the published, 45 nm-scaled figures the
//! dissertation tabulates; LAC/LAP rows are produced by our own model so the
//! comparison methodology matches the paper's. Power breakdowns encode the
//! per-component fractions the §4.5 figures report (register files >30% in
//! GPUs; instruction handling, caches, out-of-order logic in CPUs), scaled
//! to the published totals.

use crate::components::Precision;
use crate::pe::{chip_metrics, core_metrics, PeModel};

/// One row of Table 3.2 / Table 4.2.
#[derive(Clone, Debug)]
pub struct PlatformRow {
    pub name: &'static str,
    pub precision: Precision,
    pub gflops: f64,
    pub w_per_mm2: f64,
    pub gflops_per_mm2: f64,
    pub gflops_per_w: f64,
    pub utilization: f64,
}

/// Table 3.2: cores running GEMM (published, 45 nm scaled).
pub fn platform_cores_table() -> Vec<PlatformRow> {
    use Precision::{Double as DP, Single as SP};
    let mut rows = vec![
        PlatformRow {
            name: "Cell SPE",
            precision: SP,
            gflops: 0.0,
            w_per_mm2: 0.4,
            gflops_per_mm2: 6.4,
            gflops_per_w: 16.0,
            utilization: 0.83,
        },
        PlatformRow {
            name: "Nvidia GTX280 SM",
            precision: SP,
            gflops: 0.0,
            w_per_mm2: 0.6,
            gflops_per_mm2: 3.1,
            gflops_per_w: 5.3,
            utilization: 0.66,
        },
        PlatformRow {
            name: "Rigel cluster",
            precision: SP,
            gflops: 0.0,
            w_per_mm2: 0.3,
            gflops_per_mm2: 4.5,
            gflops_per_w: 15.0,
            utilization: 0.40,
        },
        PlatformRow {
            name: "80-Tile @0.8V",
            precision: SP,
            gflops: 0.0,
            w_per_mm2: 0.2,
            gflops_per_mm2: 1.2,
            gflops_per_w: 8.3,
            utilization: 0.38,
        },
        PlatformRow {
            name: "Nvidia GTX480 SM",
            precision: SP,
            gflops: 0.0,
            w_per_mm2: 0.5,
            gflops_per_mm2: 4.5,
            gflops_per_w: 8.4,
            utilization: 0.70,
        },
        PlatformRow {
            name: "Altera Stratix IV",
            precision: SP,
            gflops: 0.0,
            w_per_mm2: 0.02,
            gflops_per_mm2: 0.1,
            gflops_per_w: 7.0,
            utilization: 0.90,
        },
        PlatformRow {
            name: "Intel Core",
            precision: DP,
            gflops: 0.0,
            w_per_mm2: 0.5,
            gflops_per_mm2: 0.4,
            gflops_per_w: 0.85,
            utilization: 0.95,
        },
        PlatformRow {
            name: "Nvidia GTX480 SM (DP)",
            precision: DP,
            gflops: 0.0,
            w_per_mm2: 0.5,
            gflops_per_mm2: 2.0,
            gflops_per_w: 4.1,
            utilization: 0.70,
        },
        PlatformRow {
            name: "Altera Stratix IV (DP)",
            precision: DP,
            gflops: 0.0,
            w_per_mm2: 0.02,
            gflops_per_mm2: 0.05,
            gflops_per_w: 3.5,
            utilization: 0.90,
        },
        PlatformRow {
            name: "ClearSpeed CSX700",
            precision: DP,
            gflops: 0.0,
            w_per_mm2: 0.02,
            gflops_per_mm2: 0.28,
            gflops_per_w: 12.5,
            utilization: 0.78,
        },
    ];
    // Our LAC rows from the model (SP and DP at ~1.1 GHz, 95% utilization).
    for (precision, name) in [(SP, "LAC (SP, modeled)"), (DP, "LAC (DP, modeled)")] {
        let pe = PeModel {
            precision,
            ..Default::default()
        };
        let core = core_metrics(&pe, 4, 1.1, 0.95);
        rows.push(PlatformRow {
            name,
            precision,
            gflops: core.gflops,
            w_per_mm2: core.power_w / core.area_mm2,
            gflops_per_mm2: core.gflops_per_mm2,
            gflops_per_w: core.gflops_per_w,
            utilization: 0.95,
        });
    }
    rows
}

/// Table 4.2: whole systems running GEMM.
pub fn platform_systems_table() -> Vec<PlatformRow> {
    use Precision::{Double as DP, Single as SP};
    let mut rows = vec![
        PlatformRow {
            name: "Cell",
            precision: SP,
            gflops: 200.0,
            w_per_mm2: 0.3,
            gflops_per_mm2: 1.5,
            gflops_per_w: 5.0,
            utilization: 0.88,
        },
        PlatformRow {
            name: "Nvidia GTX280",
            precision: SP,
            gflops: 410.0,
            w_per_mm2: 0.3,
            gflops_per_mm2: 0.8,
            gflops_per_w: 2.6,
            utilization: 0.66,
        },
        PlatformRow {
            name: "Rigel",
            precision: SP,
            gflops: 850.0,
            w_per_mm2: 0.3,
            gflops_per_mm2: 3.2,
            gflops_per_w: 10.7,
            utilization: 0.40,
        },
        PlatformRow {
            name: "Nvidia GTX480",
            precision: SP,
            gflops: 940.0,
            w_per_mm2: 0.2,
            gflops_per_mm2: 0.9,
            gflops_per_w: 5.2,
            utilization: 0.70,
        },
        PlatformRow {
            name: "Core i7-960",
            precision: SP,
            gflops: 96.0,
            w_per_mm2: 0.4,
            gflops_per_mm2: 0.5,
            gflops_per_w: 1.14,
            utilization: 0.95,
        },
        PlatformRow {
            name: "Altera Stratix IV",
            precision: SP,
            gflops: 200.0,
            w_per_mm2: 0.02,
            gflops_per_mm2: 0.1,
            gflops_per_w: 7.0,
            utilization: 0.90,
        },
        PlatformRow {
            name: "Intel Quad-Core",
            precision: DP,
            gflops: 40.0,
            w_per_mm2: 0.5,
            gflops_per_mm2: 0.4,
            gflops_per_w: 0.8,
            utilization: 0.95,
        },
        PlatformRow {
            name: "Intel Penryn",
            precision: DP,
            gflops: 20.0,
            w_per_mm2: 0.4,
            gflops_per_mm2: 0.2,
            gflops_per_w: 0.6,
            utilization: 0.95,
        },
        PlatformRow {
            name: "IBM Power7",
            precision: DP,
            gflops: 230.0,
            w_per_mm2: 0.5,
            gflops_per_mm2: 0.5,
            gflops_per_w: 1.0,
            utilization: 0.95,
        },
        PlatformRow {
            name: "Nvidia GTX480 (DP)",
            precision: DP,
            gflops: 470.0,
            w_per_mm2: 0.2,
            gflops_per_mm2: 0.5,
            gflops_per_w: 2.6,
            utilization: 0.70,
        },
        PlatformRow {
            name: "ClearSpeed CSX700",
            precision: DP,
            gflops: 75.0,
            w_per_mm2: 0.02,
            gflops_per_mm2: 0.2,
            gflops_per_w: 12.5,
            utilization: 0.78,
        },
    ];
    for (precision, name, s) in [
        (SP, "LAP (SP, 30 cores, modeled)", 30usize),
        (DP, "LAP (DP, 15 cores, modeled)", 15),
    ] {
        let pe = PeModel {
            precision,
            ..Default::default()
        };
        let chip = chip_metrics(&pe, 4, s, 1.4, 0.90, 5 * 1024 * 1024, 4.0);
        rows.push(PlatformRow {
            name,
            precision,
            gflops: chip.gflops,
            w_per_mm2: chip.power_w / chip.area_mm2,
            gflops_per_mm2: chip.gflops_per_mm2,
            gflops_per_w: chip.gflops_per_w,
            utilization: 0.90,
        });
    }
    rows
}

/// One component of a normalized power breakdown (mW per GFLOPS).
#[derive(Clone, Debug)]
pub struct BreakdownItem {
    pub component: &'static str,
    pub mw_per_gflops: f64,
}

/// Normalized power breakdowns (Figures 4.13–4.15): `platform` ∈
/// {"gtx280", "gtx480", "penryn", "lap-sp", "lap-dp"}.
///
/// GPU/CPU fractions follow §4.5's reported structure (register file alone
/// more than 30% of GPU core power; Penryn spends ~40% in out-of-order +
/// frontend), normalized to published totals per delivered GEMM GFLOPS.
pub fn power_breakdown(platform: &str) -> Vec<BreakdownItem> {
    match platform {
        "gtx280" => {
            // 410 SGEMM GFLOPS at ~150 W core-domain power ⇒ 366 mW/GFLOPS.
            let total = 366.0;
            vec![
                BreakdownItem {
                    component: "FPUs",
                    mw_per_gflops: total * 0.18,
                },
                BreakdownItem {
                    component: "register file",
                    mw_per_gflops: total * 0.31,
                },
                BreakdownItem {
                    component: "shared memory",
                    mw_per_gflops: total * 0.12,
                },
                BreakdownItem {
                    component: "instruction cache/issue",
                    mw_per_gflops: total * 0.10,
                },
                BreakdownItem {
                    component: "texture/constant caches",
                    mw_per_gflops: total * 0.09,
                },
                BreakdownItem {
                    component: "scalar/integer logic",
                    mw_per_gflops: total * 0.08,
                },
                BreakdownItem {
                    component: "buses/interconnect",
                    mw_per_gflops: total * 0.05,
                },
                BreakdownItem {
                    component: "idle/leakage",
                    mw_per_gflops: total * 0.07,
                },
            ]
        }
        "gtx480" => {
            // 780 SGEMM GFLOPS at ~200 W ⇒ 256 mW/GFLOPS.
            let total = 256.0;
            vec![
                BreakdownItem {
                    component: "FPUs",
                    mw_per_gflops: total * 0.22,
                },
                BreakdownItem {
                    component: "register file",
                    mw_per_gflops: total * 0.30,
                },
                BreakdownItem {
                    component: "shared memory/L1",
                    mw_per_gflops: total * 0.12,
                },
                BreakdownItem {
                    component: "instruction cache/issue",
                    mw_per_gflops: total * 0.09,
                },
                BreakdownItem {
                    component: "L2 cache",
                    mw_per_gflops: total * 0.07,
                },
                BreakdownItem {
                    component: "scalar logic",
                    mw_per_gflops: total * 0.08,
                },
                BreakdownItem {
                    component: "buses/interconnect",
                    mw_per_gflops: total * 0.05,
                },
                BreakdownItem {
                    component: "idle/leakage",
                    mw_per_gflops: total * 0.07,
                },
            ]
        }
        "penryn" => {
            // 20 DGEMM GFLOPS at ~24 W ⇒ 1200 mW/GFLOPS; §4.5: 40% of core
            // power in OoO + frontend, ~1/3 in the execution units.
            let total = 1200.0;
            vec![
                BreakdownItem {
                    component: "out-of-order engine",
                    mw_per_gflops: total * 0.25,
                },
                BreakdownItem {
                    component: "frontend/decode",
                    mw_per_gflops: total * 0.15,
                },
                BreakdownItem {
                    component: "execution units",
                    mw_per_gflops: total * 0.33,
                },
                BreakdownItem {
                    component: "L1/L2 caches",
                    mw_per_gflops: total * 0.12,
                },
                BreakdownItem {
                    component: "MMU/TLB",
                    mw_per_gflops: total * 0.05,
                },
                BreakdownItem {
                    component: "misc/IO",
                    mw_per_gflops: total * 0.10,
                },
            ]
        }
        "lap-sp" | "lap-dp" => {
            let precision = if platform == "lap-sp" {
                Precision::Single
            } else {
                Precision::Double
            };
            let pe = PeModel {
                precision,
                ..Default::default()
            };
            let m = pe.metrics(1.0);
            let gflops = m.gflops * 0.95;
            vec![
                BreakdownItem {
                    component: "FMAC units",
                    mw_per_gflops: m.fmac_mw / gflops,
                },
                BreakdownItem {
                    component: "local SRAM",
                    mw_per_gflops: m.memory_mw / gflops,
                },
                BreakdownItem {
                    component: "buses + register file",
                    mw_per_gflops: 0.03 * m.pe_mw / gflops,
                },
                BreakdownItem {
                    component: "idle/leakage",
                    mw_per_gflops: (m.pe_mw - m.fmac_mw - m.memory_mw).max(0.0) / gflops,
                },
            ]
        }
        other => panic!("unknown platform {other}"),
    }
}

/// Table 4.3: qualitative design-choice comparison.
pub fn design_choice_table() -> Vec<[&'static str; 4]> {
    vec![
        ["power waste source", "CPUs", "GPUs", "LAP"],
        [
            "instruction pipeline",
            "I$, OoO, branch pred.",
            "I$, in-order",
            "no instructions",
        ],
        [
            "execution unit",
            "1D SIMD + RF",
            "2D SIMD + RF",
            "2D + local SRAM/FPU",
        ],
        [
            "register file & move",
            "many-ported",
            "multi-ported",
            "8-entry single-ported",
        ],
        [
            "on-chip memory",
            "big cache, strong coherency",
            "small cache, weak coherency",
            "big SRAM, coupled banks",
        ],
        ["multithreading", "SMT", "blocked MT", "not needed"],
        ["BW/FPU ratio", "high", "high", "low (sufficient)"],
        ["memory/FPU ratio", "high", "low (inadequate)", "high"],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lac_sp_an_order_of_magnitude_past_gpus() {
        // §3.6: "for a single-precision LAC ... the estimated
        // performance/power ratio is an order of magnitude better than GPUs".
        let rows = platform_cores_table();
        let lac = rows.iter().find(|r| r.name.contains("LAC (SP")).unwrap();
        let gpu = rows
            .iter()
            .find(|r| r.name.contains("GTX480 SM") && r.precision == Precision::Single)
            .unwrap();
        assert!(
            lac.gflops_per_w > 8.0 * gpu.gflops_per_w,
            "{} vs {}",
            lac.gflops_per_w,
            gpu.gflops_per_w
        );
    }

    #[test]
    fn lac_dp_dozens_of_times_past_cpus() {
        // §4.5: "the double-precision LAP design shows around 30 times
        // better efficiency compared to CPUs".
        let rows = platform_systems_table();
        let lap = rows.iter().find(|r| r.name.contains("LAP (DP")).unwrap();
        let cpu = rows.iter().find(|r| r.name == "Intel Penryn").unwrap();
        let ratio = lap.gflops_per_w / cpu.gflops_per_w;
        assert!((15.0..80.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn lap_area_efficiency_leads() {
        // §4.5: "the performance/area ratio of our LAP is in all cases equal
        // to or better than other processors".
        let rows = platform_systems_table();
        let lap_dp = rows.iter().find(|r| r.name.contains("LAP (DP")).unwrap();
        for r in rows
            .iter()
            .filter(|r| r.precision == Precision::Double && !r.name.contains("LAP"))
        {
            assert!(
                lap_dp.gflops_per_mm2 >= r.gflops_per_mm2,
                "{} beats LAP",
                r.name
            );
        }
    }

    #[test]
    fn gpu_register_file_dominates_breakdown() {
        let b = power_breakdown("gtx280");
        let rf = b.iter().find(|i| i.component == "register file").unwrap();
        let fpu = b.iter().find(|i| i.component == "FPUs").unwrap();
        assert!(
            rf.mw_per_gflops > fpu.mw_per_gflops,
            "RF > FPUs in GPUs (§4.5)"
        );
    }

    #[test]
    fn lap_breakdown_total_far_below_gpu() {
        let lap: f64 = power_breakdown("lap-sp")
            .iter()
            .map(|i| i.mw_per_gflops)
            .sum();
        let gpu: f64 = power_breakdown("gtx280")
            .iter()
            .map(|i| i.mw_per_gflops)
            .sum();
        assert!(gpu > 10.0 * lap, "gpu {gpu:.0} vs lap {lap:.1} mW/GFLOPS");
    }

    #[test]
    fn penryn_overheads_match_reported_fractions() {
        let b = power_breakdown("penryn");
        let total: f64 = b.iter().map(|i| i.mw_per_gflops).sum();
        let ooo_frontend: f64 = b
            .iter()
            .filter(|i| i.component.contains("order") || i.component.contains("frontend"))
            .map(|i| i.mw_per_gflops)
            .sum();
        assert!(
            (ooo_frontend / total - 0.40).abs() < 0.02,
            "§4.5: 40% in OoO+frontend"
        );
    }

    #[test]
    fn design_choice_table_dimensions() {
        let t = design_choice_table();
        assert_eq!(t.len(), 8);
        assert!(t.iter().all(|r| r.len() == 4));
    }
}
