//! Wall-time benchmarks: throughput of the cycle-accurate simulator and the
//! reference substrate. These measure *our implementation's* speed (wall
//! time per simulated kernel), complementing the model-generated
//! tables/figures that reproduce the paper's numbers.
//!
//! Self-contained harness (`harness = false`): the environment has no
//! crates.io access, so instead of criterion this runs each case a fixed
//! number of iterations after a warmup and reports min/mean wall time.
//!
//! ```sh
//! cargo bench -p lac-bench
//! ```

use lac_kernels::{Fft64Workload, GemmWorkload, Workload};
use lac_sim::LacEngine;
use linalg_ref::{fft_radix4, gemm_blocked, BlockSizes, Complex, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    for _ in 0..2 {
        f(); // warmup
    }
    let mut best = f64::INFINITY;
    let total = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    let mean = total.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{name:<28} {:>10.3} ms/iter (best {:>10.3} ms, {iters} iters)",
        mean * 1e3,
        best * 1e3
    );
}

fn bench_sim_gemm() {
    for &(mc, kc, n) in &[(16usize, 32usize, 32usize), (32, 64, 64)] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random(mc, kc, &mut rng);
        let b = Matrix::random(kc, n, &mut rng);
        let cm = Matrix::random(mc, n, &mut rng);
        let w = GemmWorkload::new(a, b, cm);
        bench(&format!("sim_gemm/{mc}x{kc}x{n}"), 10, || {
            let mut eng = LacEngine::builder().build();
            w.run(&mut eng).unwrap();
        });
    }
}

fn bench_sim_fft64() {
    let signal: Vec<Complex> = (0..64)
        .map(|i| Complex::new((2.0 * i as f64).cos(), 0.0))
        .collect();
    let w = Fft64Workload::new(signal);
    bench("sim_fft64/fft64", 10, || {
        let mut eng = LacEngine::builder()
            .config(w.config(Default::default()))
            .build();
        w.run(&mut eng).unwrap();
    });
}

fn bench_reference() {
    let mut rng = StdRng::seed_from_u64(2);
    let a = Matrix::random(128, 128, &mut rng);
    let b = Matrix::random(128, 128, &mut rng);
    bench("reference/gemm_blocked_128", 10, || {
        let mut cm = Matrix::zeros(128, 128);
        gemm_blocked(&a, &b, &mut cm, BlockSizes::default());
        std::hint::black_box(&cm);
    });
    let sig: Vec<Complex> = (0..4096).map(|i| Complex::cis(i as f64 * 0.01)).collect();
    bench("reference/fft_radix4_4096", 10, || {
        let mut x = sig.clone();
        fft_radix4(&mut x);
        std::hint::black_box(&x);
    });
}

fn main() {
    // `cargo test` runs bench targets with --test; nothing to assert here.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    bench_sim_gemm();
    bench_sim_fft64();
    bench_reference();
}
