//! Criterion benchmarks: throughput of the cycle-accurate simulator and the
//! reference substrate. These measure *our implementation's* speed (wall
//! time per simulated kernel), complementing the model-generated
//! tables/figures that reproduce the paper's numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lac_kernels::{run_fft64, run_gemm, GemmDataLayout, GemmParams};
use lac_sim::{ExternalMem, Lac, LacConfig};
use linalg_ref::{fft_radix4, gemm_blocked, BlockSizes, Complex, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sim_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_gemm");
    group.sample_size(10);
    for &(mc, kc, n) in &[(16usize, 32usize, 32usize), (32, 64, 64)] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random(mc, kc, &mut rng);
        let b = Matrix::random(kc, n, &mut rng);
        let cm = Matrix::random(mc, n, &mut rng);
        let lay = GemmDataLayout::new(mc, kc, n);
        let image = lay.pack(&a, &b, &cm);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mc}x{kc}x{n}")),
            &image,
            |bench, image| {
                bench.iter(|| {
                    let mut lac = Lac::new(LacConfig::default());
                    let mut mem = ExternalMem::from_vec(image.clone());
                    run_gemm(&mut lac, &mut mem, &lay, &GemmParams::new(mc, kc, n)).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_sim_fft64(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_fft64");
    group.sample_size(10);
    let image: Vec<f64> = (0..128).map(|i| (i as f64).cos()).collect();
    group.bench_function("fft64", |bench| {
        bench.iter(|| {
            let cfg = LacConfig { sram_a_words: 64, sram_b_words: 64, ..Default::default() };
            let mut lac = Lac::new(cfg);
            let mut mem = ExternalMem::from_vec(image.clone());
            run_fft64(&mut lac, &mut mem).unwrap()
        });
    });
    group.finish();
}

fn bench_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let a = Matrix::random(128, 128, &mut rng);
    let b = Matrix::random(128, 128, &mut rng);
    group.bench_function("gemm_blocked_128", |bench| {
        bench.iter(|| {
            let mut cm = Matrix::zeros(128, 128);
            gemm_blocked(&a, &b, &mut cm, BlockSizes::default());
            cm
        });
    });
    let sig: Vec<Complex> = (0..4096).map(|i| Complex::cis(i as f64 * 0.01)).collect();
    group.bench_function("fft_radix4_4096", |bench| {
        bench.iter(|| {
            let mut x = sig.clone();
            fft_radix4(&mut x);
            x
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim_gemm, bench_sim_fft64, bench_reference);
criterion_main!(benches);
