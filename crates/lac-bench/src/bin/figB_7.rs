//! Figure B.7: average communication load on the core for a 64K 1D FFT.
use lac_bench::{f, table};
use lac_model::{FftCoreModel, FftVariant};

fn main() {
    let m = FftCoreModel::default();
    let mut rows = Vec::new();
    for bw in [1.0f64, 2.0, 4.0] {
        rows.push(vec![
            f(bw),
            f(m.avg_comm_load(65536, FftVariant::Overlapped, bw)),
            f(m.avg_comm_load(65536, FftVariant::NonOverlapped, bw)),
        ]);
    }
    table(
        "Figure B.7 — average words/cycle, 64K-point 1D FFT",
        &["available BW", "overlapped", "non-overlapped"],
        &rows,
    );
}
