//! Figure 3.5: bandwidth needed for peak performance vs local-store size.
use lac_bench::{f, table};
use lac_model::CoreGemmModel;

fn main() {
    let mut rows = Vec::new();
    for kb in [2usize, 4, 6, 8, 10, 12, 16, 20] {
        let words = kb * 1024 / 8;
        let mut row = vec![format!("{kb}")];
        for nr in [4usize, 8] {
            let m = CoreGemmModel::new(nr, 1e9, 512);
            let pt = m.point_for_local_store(words);
            row.push(f(m.peak_bandwidth(pt.kc) * 8.0)); // bytes/cycle
        }
        rows.push(row);
    }
    table(
        "Figure 3.5 — bytes/cycle needed for peak vs local store (n=512)",
        &["KB/PE", "nr=4", "nr=8"],
        &rows,
    );
    println!("\npaper shape: demand falls as the store grows; nr=8 needs ~2x the nr=4 bandwidth at twice the kernel");
}
