//! Figure 5.9: TRSM utilization vs local store and bandwidth.
use lac_bench::{pct, table};
use lac_model::trsm_utilization_bw;

fn main() {
    let mut rows = Vec::new();
    for k in [4usize, 8, 16, 32, 64] {
        let mut row = vec![format!("{}", k * 4)];
        for bw_bytes in [1.0f64, 2.0, 4.0, 8.0] {
            row.push(pct(trsm_utilization_bw(4, k, 256, bw_bytes / 8.0 * 4.0, 5)));
        }
        rows.push(row);
    }
    table(
        "Figure 5.9 — TRSM utilization vs triangular size K and bandwidth (W=256, nr=4)",
        &["K", "1 B/cyc", "2 B/cyc", "4 B/cyc", "8 B/cyc"],
        &rows,
    );
    println!("\npaper: ~95% at the 20 KB/PE, 4 B/cycle design point");
}
