//! Figure 6.6: vector-norm inner-kernel power efficiency vs hardware
//! extensions and problem size — measured on the cycle-accurate simulator
//! through `LacEngine` sessions.
use lac_bench::{f, table};
use lac_kernels::{VecnormWorkload, VnormOptions, Workload};
use lac_power::EnergyModel;
use lac_sim::{LacConfig, LacEngine};

fn main() {
    let mut rows = Vec::new();
    for k in [16usize, 32, 64] {
        let n = k * 4;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 100) as f64 - 50.0) / 25.0)
            .collect();
        let mut row = vec![format!("{n}")];
        for (label, opts) in [
            (
                "no ext (SW)",
                VnormOptions {
                    exponent_extension: false,
                    comparator: false,
                },
            ),
            (
                "comparator",
                VnormOptions {
                    exponent_extension: false,
                    comparator: true,
                },
            ),
            (
                "exp ext",
                VnormOptions {
                    exponent_extension: true,
                    comparator: false,
                },
            ),
        ] {
            let w = VecnormWorkload::new(x.clone(), opts);
            let mut eng = LacEngine::builder()
                .config(w.config(LacConfig::default()))
                .build();
            let rep = w.run(&mut eng).expect(label);
            w.check(&rep).expect(label);
            let em = EnergyModel {
                comparator_extension: opts.comparator,
                ..EnergyModel::lac_default()
            };
            // Effective efficiency: only the 2K mathematically necessary
            // flops count; scaling passes are pure overhead (paper metric).
            let useful_gflop = 2.0 * n as f64 / 1e9;
            let seconds = rep.stats.cycles as f64 / 1e9;
            let watts = em.avg_power_mw(&rep.stats) / 1000.0;
            row.push(format!(
                "{} ({} cyc)",
                f(useful_gflop / seconds / watts),
                rep.stats.cycles
            ));
        }
        rows.push(row);
    }
    table(
        "Figure 6.6 — vector norm GFLOPS/W (simulated cycles + energy model)",
        &["vector length", "no ext", "comparator", "exp extension"],
        &rows,
    );
    println!(
        "\npaper shape: exp extension best, comparator middle, software worst; gap grows with size"
    );
}
