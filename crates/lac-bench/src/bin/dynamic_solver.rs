//! The continuation-subsystem headline: convergence-driven dynamic job
//! graphs served end to end.
//!
//! Three scenes, every number in simulated cycles (machine-exact):
//!
//! 1. **IP-PMM convex QP** (`lac_kernels::IppmmWorkload`) — one
//!    interior-point solve whose graph grows one four-job segment per
//!    iteration until the KKT residuals converge, swept over cores ×
//!    scheduler policies on a `LacService`.
//! 2. **Batched IPDDP fleet** (`lac_kernels::IpddpFleet`) — eight
//!    trajectory optimizations converging after *different* sweep
//!    counts, so appended segments shrink as the fleet drains; plus a
//!    `LacCluster` parity run.
//! 3. **Open-loop dynamic serving** — a two-tenant arrival trace of QP
//!    solves and mini IPDDP fleets replayed through
//!    `lac_traffic::run_open_loop_dynamic`, with whole-solve sojourn
//!    tails under tenant admission budgets tight enough to bounce.
//!
//! Before a row prints, every run is verified: outputs against the
//! `linalg-ref` reference twin (`check`), bit-identical across policies,
//! cores, backends and warm reruns, and iteration counts independent of
//! scheduling. `--json` / `--json-out` emit the perf points gated by
//! `perf_compare` against `bench/baselines/BENCH_dynamic_solver.json`.

use lac_bench::json::Json;
use lac_bench::{emit_json, f, json_mode, table};
use lac_kernels::{
    DdpJob, IpddpFleet, IpddpParams, IpmJob, IppmmParams, IppmmWorkload, KernelReport,
};
use lac_sim::dynamic::run_dynamic;
use lac_sim::{
    ChipConfig, ChipJob, ClusterConfig, LacCluster, LacConfig, LacEngine, LacService, Scheduler,
    SimError, TenantConfig,
};
use lac_traffic::{run_open_loop_dynamic, Arrival, ArrivalProcess, ArrivalTrace, OpenLoopConfig};

const POLICIES: [(Scheduler, &str); 3] = [
    (Scheduler::Fifo, "fifo"),
    (Scheduler::CriticalPath, "critical-path"),
    (Scheduler::FairShare, "fair-share"),
];

/// The open-loop QP request for one arrival (salted per arrival).
fn qp_request(a: &Arrival) -> IppmmWorkload {
    IppmmWorkload::new(IppmmParams {
        n: 8,
        m: 4,
        salt: 70 + a.index,
        ..IppmmParams::default()
    })
}

/// The open-loop mini-fleet request for one arrival.
fn fleet_request(a: &Arrival) -> IpddpFleet {
    IpddpFleet::new(IpddpParams {
        members: 2,
        horizon: 8,
        salt: 80 + a.index,
        ..IpddpParams::default()
    })
}

/// The one job type the open-loop scene serves. A backend runs exactly
/// one job type, so both clients map into this enum through
/// `DynamicGraph::map_job` — the graph shapes and outputs are untouched,
/// only the dispatch is wrapped.
enum KernelJob {
    /// One IP-PMM interior-point job (factor/solve/schur/step).
    Qp(IpmJob),
    /// One IPDDP backward-sweep timestep job.
    Ddp(DdpJob),
}

impl ChipJob for KernelJob {
    type Output = KernelReport;

    fn cost_hint(&self) -> u64 {
        match self {
            KernelJob::Qp(j) => j.cost_hint(),
            KernelJob::Ddp(j) => j.cost_hint(),
        }
    }

    fn transfer_words(&self) -> u64 {
        match self {
            KernelJob::Qp(j) => j.transfer_words(),
            KernelJob::Ddp(j) => j.transfer_words(),
        }
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<KernelReport, SimError> {
        match self {
            KernelJob::Qp(j) => j.run_on(eng),
            KernelJob::Ddp(j) => j.run_on(eng),
        }
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut points = Vec::new();

    // ---- Scene 1: IP-PMM convex QP, cores × policies. --------------------
    let qp = IppmmWorkload::demo();
    let qp_ref = qp.reference().expect("reference IPM converges");
    let mut qp_base: Option<Vec<Vec<KernelReport>>> = None;
    for cores in [2usize, 4] {
        for (sched, sched_name) in POLICIES {
            let mut svc: LacService<IpmJob> =
                LacService::new(ChipConfig::new(cores, LacConfig::default()));
            let t = svc.add_tenant(TenantConfig::new("qp"));
            let run =
                run_dynamic(&mut svc, vec![(t, qp.dynamic())], sched).expect("dynamic QP run");
            let out = &run.outcomes[0];
            qp.check(out).expect("device QP matches linalg-ref");
            assert_eq!(
                out.iterations(),
                qp_ref.iterations,
                "device and reference iteration counts must agree"
            );
            match &qp_base {
                None => qp_base = Some(out.segments.clone()),
                Some(base) => assert_eq!(
                    base, &out.segments,
                    "{sched_name}@{cores}: outputs changed with scheduling"
                ),
            }
            let clock = svc.session().clock_cycles;
            rows.push(vec![
                "ippmm".into(),
                format!("{cores}"),
                sched_name.into(),
                format!("{}", out.iterations()),
                format!("{}", out.jobs),
                format!("{}", out.appended_cost),
                format!("{clock}"),
            ]);
            points.push(Json::obj([
                ("bench", Json::from("dynamic_ippmm")),
                ("cores", Json::from(cores)),
                ("policy", Json::from(sched_name)),
                ("iterations", Json::from(out.iterations())),
                ("jobs", Json::from(out.jobs)),
                ("appended_cost", Json::from(out.appended_cost)),
                ("clock_cycles", Json::from(clock)),
            ]));
        }
    }

    // ---- Scene 2: IPDDP fleet, policies + cluster parity. ----------------
    let fleet = IpddpFleet::demo();
    let mut fleet_base: Option<Vec<Vec<KernelReport>>> = None;
    let mut fleet_rounds = 0usize;
    for (sched, sched_name) in POLICIES {
        let mut svc: LacService<DdpJob> = LacService::new(ChipConfig::new(4, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("ddp"));
        let run =
            run_dynamic(&mut svc, vec![(t, fleet.dynamic())], sched).expect("dynamic fleet run");
        let out = &run.outcomes[0];
        fleet.check(out).expect("device fleet matches linalg-ref");
        match &fleet_base {
            None => fleet_base = Some(out.segments.clone()),
            Some(base) => assert_eq!(
                base, &out.segments,
                "{sched_name}: fleet outputs changed with scheduling"
            ),
        }
        fleet_rounds = run.rounds;
        // The fleet drains: the last sweep's segment is smaller than the
        // first (members converge non-uniformly).
        let first = out.segments.first().map(Vec::len).unwrap_or(0);
        let last = out.segments.last().map(Vec::len).unwrap_or(0);
        assert!(last < first, "fleet should drain ({first} -> {last} jobs)");
        let clock = svc.session().clock_cycles;
        rows.push(vec![
            "ipddp".into(),
            "4".into(),
            sched_name.into(),
            format!("{}", out.iterations()),
            format!("{}", out.jobs),
            format!("{}", out.appended_cost),
            format!("{clock}"),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("dynamic_ipddp")),
            ("cores", Json::from(4usize)),
            ("policy", Json::from(sched_name)),
            ("sweeps", Json::from(out.iterations())),
            ("jobs", Json::from(out.jobs)),
            ("first_sweep_jobs", Json::from(first)),
            ("last_sweep_jobs", Json::from(last)),
            ("appended_cost", Json::from(out.appended_cost)),
            ("clock_cycles", Json::from(clock)),
        ]));
    }

    // Cluster parity: two 2-core chips must reproduce the service's
    // segments bit for bit.
    {
        let mut cluster: LacCluster<DdpJob> = LacCluster::new(ClusterConfig::homogeneous(
            2,
            ChipConfig::new(2, LacConfig::default()),
        ));
        let t = cluster.add_tenant(TenantConfig::new("ddp"));
        let run = run_dynamic(
            &mut cluster,
            vec![(t, fleet.dynamic())],
            Scheduler::FairShare,
        )
        .expect("cluster fleet run");
        assert_eq!(
            Some(&run.outcomes[0].segments),
            fleet_base.as_ref(),
            "cluster and service dynamic runs must agree bitwise"
        );
        assert_eq!(run.rounds, fleet_rounds, "same segment count, same rounds");
        let clock = cluster.session().clock_cycles;
        rows.push(vec![
            "ipddp-cluster".into(),
            "2x2".into(),
            "fair-share".into(),
            format!("{}", run.outcomes[0].iterations()),
            format!("{}", run.outcomes[0].jobs),
            format!("{}", run.outcomes[0].appended_cost),
            format!("{clock}"),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("dynamic_ipddp_cluster")),
            ("chips", Json::from(2usize)),
            ("cores", Json::from(2usize)),
            ("policy", Json::from("fair-share")),
            ("sweeps", Json::from(run.outcomes[0].iterations())),
            ("clock_cycles", Json::from(clock)),
        ]));
    }

    // ---- Scene 3: open-loop dynamic serving. -----------------------------
    let trace = ArrivalTrace::generate(
        17,
        60_000,
        &[
            ArrivalProcess::Poisson { mean_gap: 9_000.0 },
            ArrivalProcess::Poisson { mean_gap: 18_000.0 },
        ],
    );
    assert!(!trace.is_empty());
    let serve = |sched: Scheduler| {
        let mut svc: LacService<KernelJob> =
            LacService::new(ChipConfig::new(4, LacConfig::default()));
        let ids = vec![
            svc.add_tenant(
                TenantConfig::new("qp")
                    .with_admission_budget(2_000)
                    .with_deadline(120_000),
            ),
            svc.add_tenant(TenantConfig::new("ddp").with_admission_budget(3_000)),
        ];
        let report = run_open_loop_dynamic(
            &mut svc,
            &trace,
            &ids,
            |a| match a.tenant {
                0 => qp_request(a).dynamic().map_job(KernelJob::Qp),
                _ => fleet_request(a).dynamic().map_job(KernelJob::Ddp),
            },
            OpenLoopConfig {
                sched,
                ..OpenLoopConfig::default()
            },
        )
        .expect("open-loop dynamic replay");
        for id in &ids {
            assert_eq!(
                svc.tenant_session(*id).inflight_cost,
                0,
                "every admitted cost drained"
            );
        }
        report
    };
    let report = serve(Scheduler::FairShare);
    assert_eq!(
        report.completed.len(),
        trace.len(),
        "every request converged"
    );
    for c in &report.completed {
        match c.arrival.tenant {
            0 => qp_request(&c.arrival)
                .check(&c.outcome)
                .expect("open-loop QP matches linalg-ref"),
            _ => fleet_request(&c.arrival)
                .check(&c.outcome)
                .expect("open-loop fleet matches linalg-ref"),
        }
    }
    // Outputs — including segment counts — are policy-independent even
    // under open-loop admission; latencies are not.
    let fifo = serve(Scheduler::Fifo);
    let shape = |r: &lac_traffic::DynamicOpenLoopReport<KernelReport>| {
        let mut v: Vec<_> = r
            .completed
            .iter()
            .map(|c| (c.arrival, c.outcome.segments.clone()))
            .collect();
        v.sort_by_key(|(a, _)| (a.tenant, a.index));
        v
    };
    assert_eq!(
        shape(&report),
        shape(&fifo),
        "open-loop outputs moved with policy"
    );

    let appended: u64 = report
        .completed
        .iter()
        .map(|c| c.outcome.appended_cost)
        .sum();
    for (tenant, name) in [(0usize, "qp"), (1usize, "ddp")] {
        let lat = &report.per_tenant[tenant];
        rows.push(vec![
            format!("open-loop/{name}"),
            "4".into(),
            "fair-share".into(),
            format!("{}", lat.hist.count()),
            format!("{}", report.rounds),
            format!("{appended}"),
            format!("{}", lat.hist.p99()),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("dynamic_open_loop")),
            ("tenants", Json::from(2usize)),
            ("cores", Json::from(4usize)),
            ("policy", Json::from("fair-share")),
            ("load", Json::from(name)),
            ("requests", Json::from(lat.hist.count())),
            ("p50_sojourn_cycles", Json::from(lat.hist.p50())),
            ("p99_sojourn_cycles", Json::from(lat.hist.p99())),
            ("deadline_misses", Json::from(lat.deadline_misses)),
            ("rounds", Json::from(report.rounds)),
            ("final_clock_cycles", Json::from(report.final_clock)),
        ]));
    }

    emit_json(Json::arr(points));
    if !json_mode() {
        table(
            "Dynamic solver — convergence-driven graphs through the continuation \
             subsystem; outputs verified vs linalg-ref, bit-identical across \
             policies/cores/backends; appended work charged to tenant budgets",
            &[
                "scene",
                "cores",
                "policy",
                "iters/reqs",
                "jobs/rounds",
                "appended",
                "clock/p99",
            ],
            &rows,
        );
        println!(
            "\nopen-loop: {} requests, {} rounds, {} appended cost, final clock {}",
            report.completed.len(),
            report.rounds,
            f(appended as f64),
            report.final_clock
        );
    }
}
