//! The CI perf gate: compare freshly generated bench JSON against the
//! committed baselines and fail on regressions.
//!
//! ```text
//! perf_compare <baseline-dir> <fresh-dir> [--tolerance 0.15]
//! ```
//!
//! For every `BENCH_<name>.json` in the baseline dir the matching
//! `<name>.json` must exist in the fresh dir (the layout `run_all`
//! archives to `target/release/perf/`). Points are matched by their
//! identity fields (`bench`, `tenants`, `cores`, `rounds`, `policy` —
//! whichever are present), then the gated metrics are compared:
//!
//! * `makespan_cycles`, `*_clock_cycles` and lower-is-better latency
//!   tails (`*sojourn*` — e.g. `p99_sojourn_cycles`,
//!   `p999_sojourn_cycles` from `service_latency`) regress when they
//!   **grow** beyond tolerance;
//! * metrics containing `throughput` or `speedup` regress when they
//!   **shrink** beyond tolerance.
//!
//! Everything here is simulated cycles, so baselines are exact across
//! machines; the 15% default tolerance only absorbs intentional
//! remodeling, not noise.
//!
//! On failure, the exact refresh command for each offending benchmark is
//! printed, of the form
//!
//! ```text
//! cargo run --release -p lac-bench --bin <bench> -- \
//!     --json-out bench/baselines/BENCH_<bench>.json
//! ```
//!
//! Run it from the repo root after an *intentional* perf trade-off and
//! commit the regenerated `bench/baselines/BENCH_<bench>.json`; never
//! refresh to paper over an unexplained regression.

use lac_bench::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_TOLERANCE: f64 = 0.15;

/// Fields that identify a point within its benchmark file.
const IDENTITY_FIELDS: [&str; 9] = [
    "bench", "backend", "chips", "tenants", "cores", "rounds", "policy", "load", "slo",
];

fn identity(point: &Json) -> String {
    let mut key = String::new();
    for field in IDENTITY_FIELDS {
        if let Some(v) = point.get(field) {
            key.push_str(&format!("{field}={} ", v.render()));
        }
    }
    key.trim_end().to_string()
}

/// How a metric field is gated, by name.
enum Gate {
    WorseIfHigher,
    WorseIfLower,
}

fn gate_for(field: &str) -> Option<Gate> {
    if field == "makespan_cycles"
        || field == "clock_cycles"
        || field.ends_with("_clock_cycles")
        || field.contains("sojourn")
        || field.ends_with("_makespan_ratio")
    {
        Some(Gate::WorseIfHigher)
    } else if field.contains("throughput") || field.contains("speedup") {
        Some(Gate::WorseIfLower)
    } else {
        None
    }
}

fn points(path: &Path) -> Result<Vec<Json>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    match Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))? {
        Json::Arr(items) => Ok(items),
        _ => Err(format!("{}: expected a top-level array", path.display())),
    }
}

fn refresh_hint(bench: &str) -> String {
    format!(
        "   refresh: cargo run --release -p lac-bench --bin {bench} -- \
         --json-out bench/baselines/BENCH_{bench}.json"
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut dirs = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--tolerance" {
            tolerance = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--tolerance takes a ratio, e.g. 0.15");
        } else {
            dirs.push(PathBuf::from(a));
        }
    }
    let [baseline_dir, fresh_dir] = dirs.as_slice() else {
        eprintln!("usage: perf_compare <baseline-dir> <fresh-dir> [--tolerance 0.15]");
        return ExitCode::FAILURE;
    };

    let mut baselines: Vec<(String, PathBuf)> = std::fs::read_dir(baseline_dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", baseline_dir.display()))
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let bench = name
                .strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .to_string();
            Some((bench, e.path()))
        })
        .collect();
    baselines.sort();
    if baselines.is_empty() {
        eprintln!(
            "no BENCH_*.json baselines in {} — nothing to gate",
            baseline_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let mut failures = Vec::new();
    let mut compared = 0usize;
    for (bench, base_path) in &baselines {
        let failures_before = failures.len();
        let fresh_path = fresh_dir.join(format!("{bench}.json"));
        if !fresh_path.is_file() {
            failures.push(format!(
                "!! {bench}: fresh results missing at {} (did the bench run with --json-out?)",
                fresh_path.display()
            ));
            continue;
        }
        let (base, fresh) = match (points(base_path), points(&fresh_path)) {
            (Ok(b), Ok(f)) => (b, f),
            (b, f) => {
                for err in [b.err(), f.err()].into_iter().flatten() {
                    failures.push(format!("!! {bench}: {err}\n{}", refresh_hint(bench)));
                }
                continue;
            }
        };
        for base_point in &base {
            let key = identity(base_point);
            let Some(fresh_point) = fresh.iter().find(|p| identity(p) == key) else {
                failures.push(format!(
                    "!! {bench}: point [{key}] vanished from the fresh run — the sweep \
                     changed shape, refresh the baseline\n{}",
                    refresh_hint(bench)
                ));
                continue;
            };
            let Json::Obj(fields) = base_point else {
                continue;
            };
            for (field, base_value) in fields {
                let Some(gate) = gate_for(field) else {
                    continue;
                };
                let Some(b) = base_value.as_f64() else {
                    continue;
                };
                // A gated metric present in the baseline must stay
                // present — a renamed or dropped field would otherwise
                // disarm the gate silently.
                let Some(f) = fresh_point.get(field).and_then(Json::as_f64) else {
                    failures.push(format!(
                        "!! {bench} [{key}]: gated metric {field} vanished from the fresh \
                         point — the bench's JSON shape changed, refresh the baseline\n{}",
                        refresh_hint(bench)
                    ));
                    continue;
                };
                compared += 1;
                if b <= 0.0 {
                    continue;
                }
                let (worse, direction) = match gate {
                    Gate::WorseIfHigher => (f > b * (1.0 + tolerance), "rose"),
                    Gate::WorseIfLower => (f < b / (1.0 + tolerance), "fell"),
                };
                if worse {
                    failures.push(format!(
                        "!! {bench} [{key}]: {field} {direction} {b} -> {f} \
                         (>{:.0}% regression)\n{}",
                        tolerance * 100.0,
                        refresh_hint(bench)
                    ));
                } else {
                    let improved = match gate {
                        Gate::WorseIfHigher => f < b / (1.0 + tolerance),
                        Gate::WorseIfLower => f > b * (1.0 + tolerance),
                    };
                    if improved {
                        println!(
                            "^^ {bench} [{key}]: {field} improved {b} -> {f}; consider \
                             refreshing the baseline to lock it in"
                        );
                    }
                }
            }
        }
        if failures.len() == failures_before {
            println!(
                "ok {bench}: {} baseline points held within {:.0}%",
                base.len(),
                tolerance * 100.0
            );
        }
    }

    if failures.is_empty() {
        println!(
            "perf gate passed: {compared} gated metrics compared across {} benchmarks",
            baselines.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("{f}");
        }
        eprintln!(
            "\nperf gate FAILED ({} problem(s)). If the change is an intentional perf \
             trade-off, refresh the affected baselines with the commands above and commit \
             the new bench/baselines/BENCH_*.json.",
            failures.len()
        );
        ExitCode::FAILURE
    }
}
