//! Table A.2: cycle counts and dynamic energy for architecture options
//! (divide/sqrt implementation x MAC extensions) across algorithms and
//! problem sizes — all measured on the cycle-accurate simulator through
//! `LacEngine` sessions.
use lac_bench::{f, table};
use lac_fpu::DivSqrtImpl;
use lac_kernels::{
    BlockedCholWorkload, LuOptions, LuPanelWorkload, VecnormWorkload, VnormOptions, Workload,
};
use lac_power::{extensions::divsqrt_energy_pj, DivSqrtOption, EnergyModel};
use lac_sim::{LacConfig, LacEngine};
use linalg_ref::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn energy_model(imp: DivSqrtImpl, comparator: bool) -> EnergyModel {
    let opt = match imp {
        DivSqrtImpl::Software => DivSqrtOption::Software,
        DivSqrtImpl::Isolated => DivSqrtOption::Isolated,
        DivSqrtImpl::DiagonalPes => DivSqrtOption::DiagonalPes,
    };
    EnergyModel {
        sfu_energy_pj: divsqrt_energy_pj(opt),
        comparator_extension: comparator,
        ..EnergyModel::lac_default()
    }
}

/// Run one workload on a fresh session with the given div/sqrt option.
fn measure(w: &dyn Workload, imp: DivSqrtImpl) -> lac_sim::ExecStats {
    let base = LacConfig {
        divsqrt: imp,
        ..Default::default()
    };
    let mut eng = LacEngine::builder().config(w.config(base)).build();
    let rep = w
        .run(&mut eng)
        .unwrap_or_else(|e| panic!("{}: {e:?}", w.name()));
    rep.stats
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut rows = Vec::new();
    for imp in [
        DivSqrtImpl::Software,
        DivSqrtImpl::Isolated,
        DivSqrtImpl::DiagonalPes,
    ] {
        for kk in [16usize, 32] {
            let a = Matrix::random_spd(kk, &mut rng);
            let stats = measure(&BlockedCholWorkload::new(a), imp);
            let em = energy_model(imp, true);
            rows.push(vec![
                format!("{imp:?}"),
                format!("Cholesky {kk}x{kk}"),
                format!("{}", stats.cycles),
                f(em.energy_nj(&stats) / 1000.0),
            ]);
        }
        for k in [16usize, 64] {
            for comparator in [true, false] {
                let a = Matrix::random(k * 4, 4, &mut rng);
                let stats = measure(&LuPanelWorkload::new(a, LuOptions { comparator }), imp);
                let em = energy_model(imp, comparator);
                rows.push(vec![
                    format!("{imp:?}"),
                    format!("LU {}x4 (cmp={comparator})", k * 4),
                    format!("{}", stats.cycles),
                    f(em.energy_nj(&stats) / 1000.0),
                ]);
            }
        }
        for k in [16usize, 64] {
            for (label, opts) in [
                (
                    "none",
                    VnormOptions {
                        exponent_extension: false,
                        comparator: false,
                    },
                ),
                (
                    "cmp",
                    VnormOptions {
                        exponent_extension: false,
                        comparator: true,
                    },
                ),
                (
                    "exp",
                    VnormOptions {
                        exponent_extension: true,
                        comparator: false,
                    },
                ),
            ] {
                let x: Vec<f64> = (0..k * 4).map(|i| (i as f64).sin()).collect();
                let stats = measure(&VecnormWorkload::new(x, opts), imp);
                let em = energy_model(imp, opts.comparator);
                rows.push(vec![
                    format!("{imp:?}"),
                    format!("Vnorm {} ({label})", k * 4),
                    format!("{}", stats.cycles),
                    f(em.energy_nj(&stats) / 1000.0),
                ]);
            }
        }
    }
    table(
        "Table A.2 — cycles and dynamic energy per architecture option (simulated)",
        &["div/sqrt impl", "algorithm & size", "cycles", "energy [uJ]"],
        &rows,
    );
    println!("\npaper shape: DiagonalPes fastest, Software slowest; comparator & exp extensions cut both axes");
}
