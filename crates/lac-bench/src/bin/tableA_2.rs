//! Table A.2: cycle counts and dynamic energy for architecture options
//! (divide/sqrt implementation x MAC extensions) across algorithms and
//! problem sizes — all measured on the cycle-accurate simulator.
use lac_bench::{f, table};
use lac_fpu::{DivSqrtImpl, FpuConfig};
use lac_kernels::{lu_panel_matrix, run_blocked_cholesky, run_vecnorm, LuOptions, VnormOptions};
use lac_power::{extensions::divsqrt_energy_pj, DivSqrtOption, EnergyModel};
use lac_sim::{ExternalMem, Lac, LacConfig};
use linalg_ref::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn energy_model(imp: DivSqrtImpl, comparator: bool) -> EnergyModel {
    let opt = match imp {
        DivSqrtImpl::Software => DivSqrtOption::Software,
        DivSqrtImpl::Isolated => DivSqrtOption::Isolated,
        DivSqrtImpl::DiagonalPes => DivSqrtOption::DiagonalPes,
    };
    EnergyModel {
        sfu_energy_pj: divsqrt_energy_pj(opt),
        comparator_extension: comparator,
        ..EnergyModel::lac_default()
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut rows = Vec::new();
    for imp in [DivSqrtImpl::Software, DivSqrtImpl::Isolated, DivSqrtImpl::DiagonalPes] {
        let cfg = LacConfig { divsqrt: imp, ..Default::default() };
        for kk in [16usize, 32] {
            let a = Matrix::random_spd(kk, &mut rng);
            let mut lac = Lac::new(cfg);
            let (_, stats) = run_blocked_cholesky(&mut lac, &a).unwrap();
            let em = energy_model(imp, true);
            rows.push(vec![
                format!("{imp:?}"),
                format!("Cholesky {kk}x{kk}"),
                format!("{}", stats.cycles),
                f(em.energy_nj(&stats) / 1000.0),
            ]);
        }
        for k in [16usize, 64] {
            for comparator in [true, false] {
                let a = Matrix::random(k * 4, 4, &mut rng);
                let mut lac = Lac::new(cfg);
                let (_, _, stats) =
                    lu_panel_matrix(&mut lac, &a, &LuOptions { comparator }).unwrap();
                let em = energy_model(imp, comparator);
                rows.push(vec![
                    format!("{imp:?}"),
                    format!("LU {}x4 (cmp={comparator})", k * 4),
                    format!("{}", stats.cycles),
                    f(em.energy_nj(&stats) / 1000.0),
                ]);
            }
        }
        for k in [16usize, 64] {
            for (label, opts) in [
                ("none", VnormOptions { exponent_extension: false, comparator: false }),
                ("cmp", VnormOptions { exponent_extension: false, comparator: true }),
                ("exp", VnormOptions { exponent_extension: true, comparator: false }),
            ] {
                let cfg2 = LacConfig {
                    divsqrt: imp,
                    fpu: FpuConfig {
                        exponent_extension: opts.exponent_extension,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let x: Vec<f64> = (0..k * 4).map(|i| (i as f64).sin()).collect();
                let mut lac = Lac::new(cfg2);
                let mut mem = ExternalMem::from_vec(x);
                let rep = run_vecnorm(&mut lac, &mut mem, k, &opts).unwrap();
                let em = energy_model(imp, opts.comparator);
                rows.push(vec![
                    format!("{imp:?}"),
                    format!("Vnorm {} ({label})", k * 4),
                    format!("{}", rep.stats.cycles),
                    f(em.energy_nj(&rep.stats) / 1000.0),
                ]);
            }
        }
    }
    table(
        "Table A.2 — cycles and dynamic energy per architecture option (simulated)",
        &["div/sqrt impl", "algorithm & size", "cycles", "energy [uJ]"],
        &rows,
    );
    println!("\npaper shape: DiagonalPes fastest, Software slowest; comparator & exp extensions cut both axes");
}
