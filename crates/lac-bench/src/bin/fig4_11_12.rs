//! Figures 4.11/4.12: the same 128-MAC system with NUCA caches instead of
//! SRAM — the memory now dominates both area and power at small sizes.
use lac_bench::{f, table};
use lac_power::{core_metrics, NucaModel, PeModel};

fn main() {
    let pe = PeModel::default();
    let cores = core_metrics(&pe, 4, 1.0, 0.95);
    let mut rows = Vec::new();
    for mb in [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let bytes = (mb * 1024.0 * 1024.0) as usize;
        // Smaller memory must sustain higher bandwidth (Figure 4.2).
        let bw = 4.0 * (2.0 / mb).max(1.0);
        let nuca = NucaModel::new(bytes, bw);
        let mem_power_w = (nuca.power_mw(1.0, bw) + nuca.leakage_mw()) / 1000.0;
        let chip_area = cores.area_mm2 * 8.0 + nuca.area_mm2();
        let chip_power = cores.power_w * 8.0 + mem_power_w;
        let gflops = cores.gflops * 8.0;
        rows.push(vec![
            f(mb),
            f(cores.area_mm2 * 8.0),
            f(nuca.area_mm2()),
            f(chip_area),
            f(mem_power_w * 1000.0 / gflops),
            f(chip_power * 1000.0 / gflops),
        ]);
    }
    table(
        "Figures 4.11/4.12 — NUCA-based system (S=8, n=2048)",
        &[
            "mem MB",
            "cores mm^2",
            "NUCA mm^2",
            "chip mm^2",
            "mem mW/GFLOP",
            "chip mW/GFLOP",
        ],
        &rows,
    );
    println!(
        "\npaper: NUCA occupies more area than the cores in all cases; small fast NUCA is worst"
    );
}
