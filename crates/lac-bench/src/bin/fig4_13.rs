//! Figure 4.13: normalized power breakdown — GTX280 vs LAP, 65 nm.
use lac_bench::{f, table};
use lac_power::power_breakdown;

fn main() {
    for plat in ["gtx280", "lap-sp"] {
        let b = power_breakdown(plat);
        let total: f64 = b.iter().map(|i| i.mw_per_gflops).sum();
        let rows: Vec<Vec<String>> = b
            .iter()
            .map(|i| {
                vec![
                    i.component.into(),
                    f(i.mw_per_gflops),
                    format!("{:.1}%", 100.0 * i.mw_per_gflops / total),
                ]
            })
            .collect();
        table(
            &format!("Figure 4.13 — {plat} power breakdown (mW per delivered GFLOPS)"),
            &["component", "mW/GFLOPS", "share"],
            &rows,
        );
        println!("total: {:.1} mW/GFLOPS", total);
    }
}
