//! Table B.1: FFT core requirements for overlapped and non-overlapped
//! N x N 2D and N^2 1D transforms.
use lac_bench::{f, table};
use lac_model::{FftCoreModel, FftVariant};

fn main() {
    let m = FftCoreModel::default();
    let mut rows = Vec::new();
    for n in [256usize, 1024] {
        for variant in [FftVariant::NonOverlapped, FftVariant::Overlapped] {
            let (store, bw) = m.requirements(variant);
            rows.push(vec![
                format!("{n}x{n} 2D"),
                format!("{variant:?}"),
                format!("{store}"),
                f(bw),
                f(m.cycles_2d(n, variant, 4.0)),
            ]);
            rows.push(vec![
                format!("{} 1D", n * n),
                format!("{variant:?}"),
                format!("{store}"),
                f(bw),
                f(m.cycles_1d(n * n, variant, 4.0)),
            ]);
        }
    }
    table(
        "Table B.1 — FFT core requirements (store words/PE, BW words/cycle)",
        &["problem", "variant", "store/PE", "BW for overlap", "cycles"],
        &rows,
    );
}
