//! Figure 5.10: utilization of the representative level-3 BLAS operations.
use lac_bench::{pct, table};
use lac_model::{syr2k_utilization, syrk_utilization, trsm_utilization_bw, CoreGemmModel};

fn main() {
    let mut rows = Vec::new();
    for kc in [32usize, 64, 128, 256] {
        let gemm = CoreGemmModel::new(4, 0.5, 512).utilization(kc, kc);
        rows.push(vec![
            format!("{kc}"),
            pct(gemm),
            pct(trsm_utilization_bw(4, kc / 4, kc, 0.5 * 4.0, 5)),
            pct(syrk_utilization(4, kc, kc, 2.0, 5)),
            pct(syr2k_utilization(4, kc, kc, 2.0, 5)),
        ]);
    }
    table(
        "Figure 5.10 — level-3 BLAS utilizations (nr=4, 4 B/cycle)",
        &["mc=kc", "GEMM", "TRSM", "SYRK", "SYR2K"],
        &rows,
    );
    println!("\npaper at 20 KB/PE, 4 B/cycle: GEMM 100%, TRSM 95%, SYRK 90%, SYR2K 85%");
}
