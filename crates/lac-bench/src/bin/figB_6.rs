//! Figure B.6: local store per PE and utilization, overlapped vs not.
use lac_bench::{f, pct, table};
use lac_model::{FftCoreModel, FftVariant};

fn main() {
    let m = FftCoreModel::default();
    let mut rows = Vec::new();
    for variant in [FftVariant::NonOverlapped, FftVariant::Overlapped] {
        rows.push(vec![
            format!("{variant:?}"),
            format!("{}", m.local_store_per_pe(variant)),
            f(m.local_store_per_pe(variant) as f64 * 8.0 / 1024.0),
            pct(m.utilization(variant, 4.0)),
        ]);
    }
    table(
        "Figure B.6 — FFT local store/PE and utilization",
        &["variant", "words/PE", "KB/PE", "utilization"],
        &rows,
    );
}
