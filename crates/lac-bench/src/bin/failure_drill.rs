//! The failure drill: kill a chip mid-fleet and measure what recovery
//! costs — while proving it never costs correctness.
//!
//! A 3-chip `LacCluster` serves a round of streamed solver requests
//! (`lac_kernels::SolverStream`: CHOL → TRSM fan-out → SYRK chains,
//! operands salted per request). The same round is then re-run under a
//! sweep of deterministic `FaultPlan`s — chip 1 killed at tick 1, chip 1
//! and chip 2 killed mid-makespan — and for every drill the harness
//! asserts the headline resilience property before printing a row:
//!
//! * every request's outputs are **bit-identical** to the fault-free
//!   round (and still verify against the independent `linalg-ref` chain);
//! * the kill landed (the chip is dead, exactly one fault event) and the
//!   event log shows the revoked executions and requeues;
//! * the run's Chrome-trace export parses with `lac_bench`'s own JSON
//!   parser and carries the fault/requeue instants.
//!
//! What the table reports is the *price* of survival: the faulted
//! makespan vs the fault-free one (recovery overhead), how many
//! executions the dying chip took down with it (discarded), and how many
//! jobs were requeued onto survivors.
//!
//! `--json` / `--json-out` emit the perf points (archived by `run_all`,
//! gated by `perf_compare` — a kill spec's `makespan_cycles` regresses
//! when recovery gets slower).

use lac_bench::json::Json;
use lac_bench::{emit_json, f, json_mode, table};
use lac_kernels::{KernelReport, SolverJob, SolverLoopParams, SolverStream};
use lac_sim::{
    ChipConfig, ClusterConfig, ClusterRound, FaultPlan, LacCluster, LacConfig, Scheduler,
    TenantConfig, TraceEvent,
};

const CHIPS: usize = 3;
const CORES_PER_CHIP: usize = 2;
const REQUESTS: u64 = 8;
const SEED_SALT: u64 = 1913;

fn stream() -> SolverStream {
    SolverStream::new(SolverLoopParams {
        n: 8,
        rounds: 1,
        panels: 2,
        width: 4,
        salt: SEED_SALT,
    })
}

/// One drill: a fresh cluster, the same admitted round, an optional kill.
fn run_round(fault: Option<FaultPlan>) -> (ClusterRound<KernelReport>, LacCluster<SolverJob>) {
    let mut cluster: LacCluster<SolverJob> = LacCluster::new(ClusterConfig::homogeneous(
        CHIPS,
        ChipConfig::new(CORES_PER_CHIP, LacConfig::default()),
    ));
    if let Some(plan) = fault {
        cluster.inject_faults(plan);
    }
    let tenant = cluster.add_tenant(TenantConfig::new("drill"));
    let s = stream();
    for i in 0..REQUESTS {
        cluster
            .enqueue(tenant, s.request(0, i).graph().graph)
            .expect("admission is unbounded here");
    }
    let round = cluster
        .run_admitted(Scheduler::CriticalPath)
        .expect("hazard-free drill round");
    assert_eq!(
        round.graphs.len(),
        REQUESTS as usize,
        "every request served"
    );
    (round, cluster)
}

fn count(round: &ClusterRound<KernelReport>, pred: impl Fn(&TraceEvent) -> bool) -> usize {
    round.events.count(pred)
}

fn main() {
    // The fault-free reference round: outputs verified against the
    // independent linalg-ref chain, makespan anchoring the overhead
    // column and the mid-run kill ticks below.
    let (baseline, _) = run_round(None);
    let s = stream();
    for (i, g) in baseline.graphs.iter().enumerate() {
        s.request(0, i as u64)
            .check_graph(&g.outputs)
            .expect("drill outputs match linalg-ref");
    }
    let base_makespan = baseline.stats.makespan_cycles;
    let mid = base_makespan / 2;

    let drills: [(&str, Option<FaultPlan>); 4] = [
        ("none", None),
        ("kill-chip1@1", Some(FaultPlan::new().kill(1, 1))),
        ("kill-chip1@mid", Some(FaultPlan::new().kill(1, mid))),
        ("kill-chip2@mid", Some(FaultPlan::new().kill(2, mid))),
    ];

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (name, plan) in drills {
        let (round, cluster) = run_round(plan.clone());

        // The headline: chip loss changes the makespan, never the bits.
        for (b, r) in baseline.graphs.iter().zip(&round.graphs) {
            assert_eq!(b.ticket, r.ticket, "completion order is admission order");
            assert_eq!(
                b.outputs, r.outputs,
                "drill '{name}' changed a request's output bits"
            );
        }

        let requeues = count(&round, |e| matches!(e, TraceEvent::Requeue { .. }));
        let discarded = count(&round, |e| {
            matches!(
                e,
                TraceEvent::Job {
                    discarded: true,
                    ..
                }
            )
        });
        if let Some(plan) = &plan {
            let killed = plan.kills()[0].chip;
            assert!(cluster.dead_chips()[killed], "the kill must land");
            assert_eq!(
                count(&round, |e| matches!(e, TraceEvent::Fault { .. })),
                1,
                "one kill, one fault event"
            );
            assert!(requeues > 0, "drill '{name}' requeued nothing");
        } else {
            assert_eq!(requeues + discarded, 0, "fault-free rounds never requeue");
        }

        // The trace door stays honest under fire: the export is real
        // JSON and the drill's instants are in it.
        let doc = Json::parse(&round.events.to_chrome_trace())
            .unwrap_or_else(|e| panic!("drill '{name}': chrome trace failed to parse: {e}"));
        let trace_events = match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items.len(),
            _ => panic!("drill '{name}': traceEvents must be an array"),
        };
        assert_eq!(trace_events, round.events.len());

        let makespan = round.stats.makespan_cycles;
        let overhead = makespan as f64 / base_makespan as f64;
        rows.push(vec![
            name.into(),
            format!("{makespan}"),
            f(overhead),
            format!("{requeues}"),
            format!("{discarded}"),
            format!("{trace_events}"),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("failure_drill")),
            ("chips", Json::from(CHIPS)),
            ("tenants", Json::from(1u64)),
            ("policy", Json::from(name)),
            ("requests", Json::from(REQUESTS)),
            ("makespan_cycles", Json::from(makespan)),
            ("recovery_overhead", Json::from(overhead)),
            ("requeued_jobs", Json::from(requeues)),
            ("discarded_executions", Json::from(discarded)),
        ]));
    }

    emit_json(Json::arr(points));
    if !json_mode() {
        table(
            &format!(
                "Failure drill — {REQUESTS} streamed solver requests (n=8, 1 round, 2 panels) \
                 on a {CHIPS}-chip LacCluster ({CORES_PER_CHIP} cores/chip), critical-path \
                 scheduling; each kill spec re-runs the identical round with a deterministic \
                 FaultPlan. Asserted per drill: outputs bit-identical to fault-free (verified \
                 vs linalg-ref), kill lands exactly once, Chrome trace parses \
                 (fault-free makespan {base_makespan} cycles)"
            ),
            &[
                "kill",
                "makespan",
                "overhead",
                "requeues",
                "discarded",
                "events",
            ],
            &rows,
        );
    }
}
