//! Multi-chip cluster scaling: the sharded-deployment story, executed.
//!
//! A fleet of independent IPM-style solver loops (`SolverFleet` — each
//! loop is CHOL → blocked-TRSM fan-out → SYRK rounds feeding the next) is
//! fused into one `JobGraph` and submitted to a `LacCluster` swept over
//! 1–4 chips × 2–4 cores per chip. The `CostBins` partitioner keeps each
//! loop (one weakly-connected component) whole on a chip, so the fleet
//! shards with zero inter-chip transfers; a `Striped` stress point at the
//! deepest sweep configuration shows what scattering the same jobs across
//! the link would cost instead.
//!
//! For every point the run is verified before a row prints:
//!
//! 1. **Correctness** — every member loop's per-round factors, solves and
//!    updates are checked against an independent `linalg-ref` chain
//!    (`SolverFleet::check`).
//! 2. **Determinism** — the submission is rerun on the same warm cluster
//!    and must be bit-identical (outputs, stats and transfer log).
//! 3. **Scaling** — at each core count, 4 chips must beat 1 chip by
//!    ≥ 1.5x makespan (the acceptance gate; components shard freely, so
//!    the expected gain is ~4x minus bin-packing imbalance).
//!
//! `--json` / `--json-out` emit the perf points machine-readably
//! (archived by `run_all`, gated by `perf_compare`).

use lac_bench::json::Json;
use lac_bench::{emit_json, f, json_mode, pct, table};
use lac_kernels::{SolverFleet, SolverJob, SolverLoopParams};
use lac_power::ClusterEnergyModel;
use lac_sim::{ChipConfig, ClusterConfig, LacCluster, LacConfig, Partitioner, Scheduler, SimMode};

const CHIPS_SWEEP: [usize; 3] = [1, 2, 4];
const CORES_SWEEP: [usize; 2] = [2, 4];
/// Fleet size: twice the deepest chip count, so every chip carries at
/// least two loops and bin-packing imbalance stays visible but small.
const FLEET: usize = 8;

fn base_params() -> SolverLoopParams {
    SolverLoopParams {
        n: 16,
        rounds: 4,
        panels: 4,
        width: 8,
        salt: 7100,
    }
}

fn cluster_of(chips: usize, cores: usize) -> LacCluster<SolverJob> {
    let chip = ChipConfig::new(cores, LacConfig::default());
    LacCluster::new(ClusterConfig::homogeneous(chips, chip))
}

fn main() {
    let nr = LacConfig::default().nr;
    let energy_model = ClusterEnergyModel::lap_default();
    let mut rows = Vec::new();
    let mut points = Vec::new();

    // (chips, cores) → makespan, for the speedup gate below.
    let mut makespans = std::collections::HashMap::new();
    for cores in CORES_SWEEP {
        for chips in CHIPS_SWEEP {
            let mut cluster = cluster_of(chips, cores);
            let fleet = SolverFleet::new(base_params(), FLEET);
            let run = cluster
                .run_graph(&fleet.graph, Scheduler::CriticalPath)
                .expect("hazard-free schedule");
            fleet
                .check(&run.outputs)
                .expect("per-member outputs match linalg-ref");
            assert!(
                run.transfers.is_empty(),
                "components must shard without cutting edges"
            );

            // Warm rerun on the same cluster (fresh fleet — solver state
            // is consumed by a run): bit-identical.
            let refleet = SolverFleet::new(base_params(), FLEET);
            let rerun = cluster
                .run_graph(&refleet.graph, Scheduler::CriticalPath)
                .expect("rerun");
            assert_eq!(run.outputs, rerun.outputs, "warm rerun diverged");
            assert_eq!(run.stats, rerun.stats, "warm rerun stats diverged");

            makespans.insert((chips, cores), run.stats.makespan_cycles);
            let e = energy_model.summarize(&run.stats);
            let util = run.stats.utilization(nr);
            let speedup = run.stats.speedup();
            rows.push(vec![
                format!("{chips}"),
                format!("{cores}"),
                "cost-bins".into(),
                format!("{}", run.stats.makespan_cycles),
                format!("{}", run.waves),
                format!("{}", run.stats.transferred_words),
                pct(util),
                f(speedup),
                f(e.total_nj / 1000.0),
                f(e.gflops_per_w),
            ]);
            points.push(Json::obj([
                ("bench", Json::from("cluster_scaling")),
                ("chips", Json::from(chips)),
                ("cores", Json::from(cores)),
                ("policy", Json::from("cost-bins")),
                ("jobs", Json::from(run.stats.jobs())),
                ("waves", Json::from(run.waves)),
                ("makespan_cycles", Json::from(run.stats.makespan_cycles)),
                (
                    "aggregate_busy_cycles",
                    Json::from(run.stats.aggregate.cycles),
                ),
                ("transferred_words", Json::from(run.stats.transferred_words)),
                ("utilization", Json::from(util)),
                ("speedup_vs_serial", Json::from(speedup)),
                ("energy_uj", Json::from(e.total_nj / 1000.0)),
                ("gflops_per_w", Json::from(e.gflops_per_w)),
            ]));
        }
    }

    // The acceptance gate: at every core count, 4 chips ≥ 1.5x over 1.
    for cores in CORES_SWEEP {
        let speedup = makespans[&(1, cores)] as f64 / makespans[&(4, cores)] as f64;
        assert!(
            speedup >= 1.5,
            "{cores} cores/chip: 4 chips gained only {speedup:.2}x over 1"
        );
        points.push(Json::obj([
            ("bench", Json::from("cluster_scaling_speedup_gate")),
            ("cores", Json::from(cores)),
            ("speedup_4_vs_1_chips", Json::from(speedup)),
            ("threshold", Json::from(1.5)),
        ]));
    }

    // Stress point: the same fleet striped job-by-job across 4 chips —
    // every round edge crosses the link, and the modeled transfers show
    // up as makespan. Deterministic like everything else (rerun must
    // match), and strictly worse than component sharding.
    {
        let (chips, cores) = (4, *CORES_SWEEP.last().unwrap());
        let mut cluster = cluster_of(chips, cores).with_partitioner(Partitioner::Striped);
        let fleet = SolverFleet::new(base_params(), FLEET);
        let run = cluster
            .run_graph(&fleet.graph, Scheduler::CriticalPath)
            .expect("striping changes cost, not correctness");
        fleet
            .check(&run.outputs)
            .expect("outputs are placement-free");
        assert!(run.stats.transferred_words > 0);
        let binned = makespans[&(chips, cores)];
        assert!(
            run.stats.makespan_cycles > binned,
            "cutting every edge must cost makespan ({} vs {binned})",
            run.stats.makespan_cycles
        );
        let e = energy_model.summarize(&run.stats);
        rows.push(vec![
            format!("{chips}"),
            format!("{cores}"),
            "striped".into(),
            format!("{}", run.stats.makespan_cycles),
            format!("{}", run.waves),
            format!("{}", run.stats.transferred_words),
            pct(run.stats.utilization(nr)),
            f(run.stats.speedup()),
            f(e.total_nj / 1000.0),
            f(e.gflops_per_w),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("cluster_scaling_striped")),
            ("chips", Json::from(chips)),
            ("cores", Json::from(cores)),
            ("policy", Json::from("striped")),
            ("makespan_cycles", Json::from(run.stats.makespan_cycles)),
            ("transferred_words", Json::from(run.stats.transferred_words)),
            (
                "transfer_stall_cycles",
                Json::from(run.stats.transfer_stall_cycles),
            ),
            (
                "striping_slowdown",
                Json::from(run.stats.makespan_cycles as f64 / binned as f64),
            ),
        ]));

        // Event-core overlap point: the same striped stress fleet under
        // `SimMode::Event` — cut-edge transfers fly while both endpoint
        // chips compute instead of stalling the wave barrier. The event
        // core's acceptance gate: bit-identical outputs, deterministic
        // rerun, and a makespan strictly below the wave coordinator's.
        let chip = ChipConfig::new(cores, LacConfig::default());
        let mut event_cluster: LacCluster<SolverJob> =
            LacCluster::new(ClusterConfig::homogeneous(chips, chip).with_sim_mode(SimMode::Event))
                .with_partitioner(Partitioner::Striped);
        let efleet = SolverFleet::new(base_params(), FLEET);
        let erun = event_cluster
            .run_graph(&efleet.graph, Scheduler::CriticalPath)
            .expect("event mode changes clocks, not correctness");
        assert_eq!(erun.outputs, run.outputs, "event mode changed output bits");
        assert!(
            erun.stats.makespan_cycles < run.stats.makespan_cycles,
            "overlap must beat the barrier: event {} vs wave {}",
            erun.stats.makespan_cycles,
            run.stats.makespan_cycles
        );
        let refleet = SolverFleet::new(base_params(), FLEET);
        let ererun = event_cluster
            .run_graph(&refleet.graph, Scheduler::CriticalPath)
            .expect("event rerun");
        assert_eq!(erun.outputs, ererun.outputs, "event rerun diverged");
        assert_eq!(erun.stats, ererun.stats, "event rerun stats diverged");
        let ee = energy_model.summarize(&erun.stats);
        rows.push(vec![
            format!("{chips}"),
            format!("{cores}"),
            "striped-event".into(),
            format!("{}", erun.stats.makespan_cycles),
            format!("{}", erun.waves),
            format!("{}", erun.stats.transferred_words),
            pct(erun.stats.utilization(nr)),
            f(erun.stats.speedup()),
            f(ee.total_nj / 1000.0),
            f(ee.gflops_per_w),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("cluster_scaling_event_overlap")),
            ("chips", Json::from(chips)),
            ("cores", Json::from(cores)),
            ("policy", Json::from("striped-event")),
            ("makespan_cycles", Json::from(erun.stats.makespan_cycles)),
            (
                "transferred_words",
                Json::from(erun.stats.transferred_words),
            ),
            (
                "transfer_stall_cycles",
                Json::from(erun.stats.transfer_stall_cycles),
            ),
            (
                "event_wave_makespan_ratio",
                Json::from(erun.stats.makespan_cycles as f64 / run.stats.makespan_cycles as f64),
            ),
        ]));
    }

    emit_json(Json::arr(points));
    if !json_mode() {
        table(
            &format!(
                "Cluster scaling — {FLEET} independent solver loops (n=16, 4 rounds, \
                 4 panels × 8 cols) fused and sharded across 1..4 chips × 2..4 \
                 cores/chip; outputs verified vs linalg-ref, bit-identical reruns, \
                 ≥1.5x @ 4 chips asserted"
            ),
            &[
                "chips",
                "cores/chip",
                "partition",
                "makespan",
                "waves",
                "xfer words",
                "util",
                "speedup",
                "energy [uJ]",
                "GFLOPS/W",
            ],
            &rows,
        );
    }
}
