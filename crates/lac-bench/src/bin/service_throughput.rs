//! The multi-tenant service headline: many interior-point clients, each
//! streaming its own solver-loop `JobGraph`s at one shared `LacService`,
//! swept over tenants × cores × scheduler policies.
//!
//! For every sweep point three doors are measured:
//!
//! 1. **Serialized per-tenant submission** (the PR-3 baseline): each
//!    tenant's graph is submitted alone, one after another — every
//!    tenant's serial CHOL spine leaves the other cores idle.
//! 2. **Multiplexed round** under `CriticalPath` and `FairShare`: every
//!    tenant's graph is admitted up front and the round interleaves them
//!    wave-by-wave, so one tenant's fan-out fills another's dependency
//!    stalls.
//! 3. **Streaming admission**: tenants get an in-flight budget of exactly
//!    one graph, enqueue two each, and the second wave of submissions
//!    bounces deterministically (backpressure), retrying after the first
//!    round drains — the admission-control contract, executed.
//!
//! Verified before any row prints: per-tenant outputs match the
//! independent `linalg-ref` chain (`check_graph`), reruns on a fresh
//! service are bit-identical, and at 8 tenants × 4 cores the multiplexed
//! FairShare round beats serialized submission by ≥ 1.3x aggregate
//! throughput (the acceptance gate). `--json` emits the perf points
//! (archived by `run_all` and gated by `perf_compare` in CI).

use lac_bench::json::Json;
use lac_bench::{emit_json, f, json_mode, pct, table};
use lac_kernels::{SolverJob, SolverLoopParams, SolverLoopWorkload};
use lac_power::ChipEnergyModel;
use lac_sim::{ChipConfig, LacConfig, LacService, Scheduler, TenantConfig, TenantId};

const TENANTS_SWEEP: [usize; 4] = [1, 2, 4, 8];
const CORES_SWEEP: [usize; 3] = [1, 2, 4];
const POLICIES: [(Scheduler, &str); 2] = [
    (Scheduler::CriticalPath, "critical-path"),
    (Scheduler::FairShare, "fair-share"),
];
/// The acceptance gate: tenants × cores point and threshold.
const GATE_TENANTS: usize = 8;
const GATE_CORES: usize = 4;
const GATE_SPEEDUP: f64 = 1.3;

/// Tenant `t`'s solver stream element: same shape for everyone, private
/// operands (the salt) per tenant so the per-tenant `linalg-ref` checks
/// are independent.
fn workload(t: usize) -> SolverLoopWorkload {
    SolverLoopWorkload::new(SolverLoopParams {
        n: 16,
        rounds: 2,
        panels: 4,
        width: 4,
        salt: 9000 + 17 * t as u64,
    })
}

/// A fresh service with `tenants` registered tenants.
fn service(cores: usize, tenants: usize) -> (LacService<SolverJob>, Vec<TenantId>) {
    let mut svc = LacService::new(ChipConfig::new(cores, LacConfig::default()));
    let ids = (0..tenants)
        .map(|t| svc.add_tenant(TenantConfig::new(format!("tenant-{t}"))))
        .collect();
    (svc, ids)
}

/// One multiplexed round over every tenant's graph.
struct Multiplexed {
    makespan: u64,
    waves: usize,
    outputs: Vec<Vec<lac_kernels::KernelReport>>,
    svc: LacService<SolverJob>,
    ids: Vec<TenantId>,
}

fn multiplexed(tenants: usize, cores: usize, sched: Scheduler) -> Multiplexed {
    let (mut svc, ids) = service(cores, tenants);
    for (t, &id) in ids.iter().enumerate() {
        svc.enqueue(id, workload(t).graph().graph)
            .expect("unbounded tenants admit everything");
    }
    let round = svc.run_admitted(sched).expect("hazard-free schedule");
    Multiplexed {
        makespan: round.stats.makespan_cycles,
        waves: round.waves,
        outputs: round.graphs.into_iter().map(|g| g.outputs).collect(),
        svc,
        ids,
    }
}

fn main() {
    let nr = LacConfig::default().nr;
    let energy_model = ChipEnergyModel::lap_default();
    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut gate_speedup = None;

    for cores in CORES_SWEEP {
        for tenants in TENANTS_SWEEP {
            // Door 1 — serialized per-tenant submission: one graph at a
            // time against the same warm service; the clock sums the
            // stand-alone makespans.
            let (mut serial_svc, _) = service(cores, tenants);
            for t in 0..tenants {
                let run = serial_svc
                    .submit(workload(t).graph().graph, Scheduler::CriticalPath)
                    .expect("hazard-free schedule");
                workload(t)
                    .check_graph(&run.outputs)
                    .expect("serialized outputs match linalg-ref");
            }
            let serial_clock = serial_svc.session().clock_cycles;

            for (sched, sched_name) in POLICIES {
                // Door 2 — every tenant admitted, one interleaved round.
                let run = multiplexed(tenants, cores, sched);
                for (t, outs) in run.outputs.iter().enumerate() {
                    workload(t)
                        .check_graph(outs)
                        .expect("multiplexed outputs match linalg-ref");
                }
                // Bit-determinism: a fresh service must reproduce the
                // round exactly — schedule and all.
                let rerun = multiplexed(tenants, cores, sched);
                assert_eq!(
                    run.makespan, rerun.makespan,
                    "{sched_name}: rerun makespan diverged"
                );
                assert_eq!(run.waves, rerun.waves, "{sched_name}: rerun waves diverged");
                assert_eq!(
                    run.outputs, rerun.outputs,
                    "{sched_name}: rerun outputs diverged"
                );

                let (makespan, waves, svc) = (run.makespan, run.waves, &run.svc);
                let stats = svc.session().chip_stats();
                let util = stats.utilization(nr);
                let speedup = serial_clock as f64 / makespan as f64;
                let wait: u64 = run
                    .ids
                    .iter()
                    .map(|&id| svc.tenant_session(id).wait_cycles)
                    .sum();
                let e = energy_model.summarize(&stats);
                if (tenants, cores, sched) == (GATE_TENANTS, GATE_CORES, Scheduler::FairShare) {
                    gate_speedup = Some(speedup);
                }
                rows.push(vec![
                    format!("{tenants}"),
                    format!("{cores}"),
                    sched_name.into(),
                    format!("{makespan}"),
                    format!("{waves}"),
                    format!("{serial_clock}"),
                    f(speedup),
                    pct(util),
                    format!("{wait}"),
                    f(e.total_nj / 1000.0),
                ]);
                points.push(Json::obj([
                    ("bench", Json::from("service_throughput")),
                    ("tenants", Json::from(tenants)),
                    ("cores", Json::from(cores)),
                    ("policy", Json::from(sched_name)),
                    ("jobs", Json::from(stats.jobs())),
                    ("waves", Json::from(waves)),
                    ("makespan_cycles", Json::from(makespan)),
                    ("serialized_clock_cycles", Json::from(serial_clock)),
                    ("throughput_speedup_vs_serialized", Json::from(speedup)),
                    ("utilization", Json::from(util)),
                    ("total_wait_cycles", Json::from(wait)),
                    ("energy_uj", Json::from(e.total_nj / 1000.0)),
                ]));
            }
        }
    }

    // Door 3 — streaming admission: budget of exactly one graph in
    // flight, two graphs per tenant. The second enqueue bounces
    // deterministically and retries after the first round drains.
    let tenants = GATE_TENANTS;
    let (mut svc, ids) = {
        let mut svc = LacService::new(ChipConfig::new(GATE_CORES, LacConfig::default()));
        let ids: Vec<TenantId> = (0..tenants)
            .map(|t| {
                svc.add_tenant(
                    TenantConfig::new(format!("tenant-{t}"))
                        .with_admission_budget(workload(t).graph_cost()),
                )
            })
            .collect();
        (svc, ids)
    };
    let mut bounced = Vec::new();
    for (t, &id) in ids.iter().enumerate() {
        svc.enqueue(id, workload(t).graph().graph)
            .expect("first fits");
        let rejected = svc
            .enqueue(id, workload(t).graph().graph)
            .expect_err("second graph must bounce off the in-flight budget");
        assert_eq!(rejected.graph_cost, workload(t).graph_cost());
        bounced.push((id, rejected.graph));
    }
    svc.run_admitted(Scheduler::FairShare).expect("round 1");
    for (id, graph) in bounced {
        svc.enqueue(id, graph)
            .expect("budget drained, retry admits");
    }
    svc.run_admitted(Scheduler::FairShare).expect("round 2");
    let admitted: u64 = ids
        .iter()
        .map(|&id| svc.tenant_session(id).graphs_admitted)
        .sum();
    let rejected: u64 = ids
        .iter()
        .map(|&id| svc.tenant_session(id).graphs_rejected)
        .sum();
    assert_eq!(admitted, 2 * tenants as u64);
    assert_eq!(rejected, tenants as u64);
    // Per-tenant energy attribution over the streamed lifetime adds up.
    let shares = energy_model.attribute(
        &svc.tenant_busy_stats(),
        GATE_CORES,
        svc.session().clock_cycles,
    );
    let whole =
        energy_model.summarize_over(&svc.session().chip_stats(), svc.session().clock_cycles);
    let attributed: f64 = shares.iter().map(|s| s.total_nj).sum();
    assert!(
        (attributed - whole.total_nj).abs() < 1e-6 * whole.total_nj,
        "attribution must conserve the service total"
    );
    points.push(Json::obj([
        ("bench", Json::from("service_throughput_admission")),
        ("tenants", Json::from(tenants)),
        ("cores", Json::from(GATE_CORES)),
        ("policy", Json::from("fair-share")),
        ("graphs_admitted", Json::from(admitted)),
        ("graphs_rejected", Json::from(rejected)),
        ("clock_cycles", Json::from(svc.session().clock_cycles)),
        ("energy_uj", Json::from(whole.total_nj / 1000.0)),
    ]));

    // The acceptance gate: multiplexed FairShare at 8 tenants × 4 cores
    // must beat serialized per-tenant submission by ≥ 1.3x.
    let speedup = gate_speedup.expect("gate point swept");
    assert!(
        speedup >= GATE_SPEEDUP,
        "{GATE_TENANTS} tenants × {GATE_CORES} cores: FairShare multiplexing gained only \
         {speedup:.2}x over serialized submission (need ≥ {GATE_SPEEDUP}x)"
    );
    points.push(Json::obj([
        ("bench", Json::from("service_throughput_gate")),
        ("tenants", Json::from(GATE_TENANTS)),
        ("cores", Json::from(GATE_CORES)),
        ("policy", Json::from("fair-share")),
        ("throughput_speedup_vs_serialized", Json::from(speedup)),
        ("threshold", Json::from(GATE_SPEEDUP)),
    ]));

    emit_json(Json::arr(points));
    if !json_mode() {
        table(
            &format!(
                "Service throughput — per-tenant solver loops (n=16, 2 rounds, 4 panels × 4 \
                 cols) multiplexed on one LacService; outputs verified vs linalg-ref, \
                 bit-identical reruns; FairShare ≥ {GATE_SPEEDUP}x over serialized @ \
                 {GATE_TENANTS} tenants × {GATE_CORES} cores asserted (got {speedup:.2}x)"
            ),
            &[
                "tenants",
                "cores",
                "policy",
                "makespan",
                "waves",
                "serialized",
                "speedup",
                "util",
                "wait cyc",
                "energy [uJ]",
            ],
            &rows,
        );
    }
}
