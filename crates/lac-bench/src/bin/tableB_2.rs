//! Table B.2: PE SRAM options — area, energy, leakage (CACTI stand-in).
use lac_bench::{f, table};
use lac_power::sram::sram_option_table;

fn main() {
    let rows: Vec<Vec<String>> = sram_option_table()
        .into_iter()
        .map(|r| vec![r.label, f(r.area_mm2), f(r.energy_pj), f(r.leakage_mw)])
        .collect();
    table(
        "Table B.2 — PE SRAM options (45 nm model)",
        &["configuration", "area mm^2", "pJ/access", "leakage mW"],
        &rows,
    );
}
