//! Figure 5.8: SYRK utilization vs local store and bandwidth
//! (mc = kc = 256 regime), model + a cycle-accurate spot check.
use lac_bench::{pct, table};
use lac_model::syrk_utilization;

fn main() {
    let mut rows = Vec::new();
    for kb in [4usize, 8, 16, 24, 32, 40] {
        // map store to the largest mc=kc panel that fits (as in fig 3.4)
        let words = (kb * 1024 / 8) * 16; // aggregate
        let kc = (((words as f64 + 64.0).sqrt() - 8.0) as usize / 4 * 4).clamp(4, 256);
        let mut row = vec![format!("{kb}")];
        for bw_bytes in [1.0f64, 2.0, 4.0, 8.0] {
            row.push(pct(syrk_utilization(4, kc, kc, bw_bytes / 8.0 * 4.0, 5)));
        }
        rows.push(row);
    }
    table(
        "Figure 5.8 — SYRK utilization vs local store and bandwidth (nr=4)",
        &["KB/PE", "1 B/cyc", "2 B/cyc", "4 B/cyc", "8 B/cyc"],
        &rows,
    );
    println!("\npaper: ~90% at 20 KB/PE and 4 B/cycle; saturates below GEMM because of the diagonal tiles");
}
