//! Table 5.1: LAC efficiency for level-3 BLAS at 1.1 GHz — model-derived
//! utilizations applied to the PE power model.
use lac_bench::{f, pct, table};
use lac_model::{syr2k_utilization, syrk_utilization, trsm_utilization_bw, CoreGemmModel};
use lac_power::{pe::core_metrics, PeModel};

fn main() {
    let pe = PeModel::default();
    let freq = 1.1;
    let ops: Vec<(&str, f64)> = vec![
        (
            "GEMM",
            CoreGemmModel::new(4, 0.5, 512).utilization(256, 256),
        ),
        ("TRSM", trsm_utilization_bw(4, 64, 256, 2.0, 5)),
        ("SYRK", syrk_utilization(4, 256, 256, 2.0, 5)),
        ("SYR2K", syr2k_utilization(4, 256, 256, 2.0, 5)),
    ];
    let rows: Vec<Vec<String>> = ops
        .into_iter()
        .map(|(name, util)| {
            let m = core_metrics(&pe, 4, freq, util);
            vec![
                name.into(),
                f(m.power_w / m.area_mm2),
                f(m.gflops_per_mm2),
                f(m.gflops_per_w),
                pct(util),
            ]
        })
        .collect();
    table(
        "Table 5.1 — LAC efficiency for level-3 BLAS at 1.1 GHz (DP, modeled)",
        &[
            "algorithm",
            "W/mm^2",
            "GFLOPS/mm^2",
            "GFLOPS/W",
            "utilization",
        ],
        &rows,
    );
    println!(
        "\npaper (nr=4): GEMM 54.4 GFLOPS/W @100%, TRSM 51.7 @95%, SYRK 49.0 @90%, SYR2K 43.0 @79%"
    );
}
