//! Figure 4.6: LAP performance vs external off-chip bandwidth and on-chip
//! memory size (1.4 GHz, nr=4).
use lac_bench::{f, table};
use lac_model::ChipGemmModel;

fn main() {
    let freq = 1.4;
    let mut rows = Vec::new();
    for s in [4usize, 8, 16] {
        for z_bytes in [4.0f64, 8.0, 16.0, 24.0] {
            for n in [256usize, 512, 768, 1024] {
                let m = ChipGemmModel::new(4, s, n, 128.min(n));
                let util = m.utilization_offchip(z_bytes / 8.0);
                let gflops = 2.0 * (s * 16) as f64 * freq * util;
                rows.push(vec![
                    format!("S={s}"),
                    format!("{z_bytes}"),
                    f((n * n) as f64 * 8.0 / 1024.0 / 1024.0),
                    f(gflops),
                ]);
            }
        }
    }
    table(
        "Figure 4.6 — LAP GFLOPS vs off-chip BW and on-chip memory (1.4 GHz)",
        &["cores", "ext BW [B/cyc]", "on-chip mem [MB]", "GFLOPS"],
        &rows,
    );
    println!("\npaper: 16 cores, 5 MB, 16 B/cycle => ~600 of 700 GFLOPS peak");
}
