//! Figure 3.4: estimated core performance vs core<->on-chip bandwidth and
//! local-store size (nr in {4,8}, mc = kc, n = 512).
use lac_bench::{pct, table};
use lac_model::CoreGemmModel;

fn main() {
    for nr in [4usize, 8] {
        let mut rows = Vec::new();
        for kb in [2usize, 4, 8, 12, 16, 20, 24, 32, 40] {
            let words = kb * 1024 / 8;
            let mut row = vec![format!("{kb}")];
            for bw_bytes in [1.0f64, 2.0, 3.0, 4.0, 8.0] {
                let m = CoreGemmModel::new(nr, bw_bytes / 8.0, 512);
                let pt = m.point_for_local_store(words);
                row.push(pct(pt.utilization));
            }
            rows.push(row);
        }
        table(
            &format!("Figure 3.4 — utilization vs local store (nr={nr}, n=512)"),
            &[
                "KB/PE", "1 B/cyc", "2 B/cyc", "3 B/cyc", "4 B/cyc", "8 B/cyc",
            ],
            &rows,
        );
    }
    println!("\npaper shape: utilization rises with store and bandwidth; 8 B/cyc nr=4 saturates near 100%");
}
