//! Regenerate every table and figure in one run (what EXPERIMENTS.md
//! records): invokes each generator binary built alongside this one.
use std::path::PathBuf;
use std::process::Command;

const BINS: &[&str] = &[
    "table3_1", "table3_2", "fig3_4", "fig3_5", "fig3_6", "fig3_7",
    "table4_1", "fig4_2", "fig4_3", "fig4_5", "fig4_6", "sec4_3_validation",
    "fig4_7", "fig4_8", "fig4_9_10", "fig4_11_12", "fig4_13", "fig4_14",
    "fig4_15", "fig4_16", "table4_2", "table4_3",
    "fig5_8", "fig5_9", "fig5_10", "table5_1",
    "table6_1", "fig6_5", "fig6_6", "fig6_7", "tableA_2",
    "table6_2", "fig6_9", "tableB_1", "tableB_2", "figB_5", "figB_6",
    "figB_7", "figB_11_12_13",
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir: PathBuf = me.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for name in BINS {
        let exe = dir.join(name);
        println!("\n######## {name} ########");
        let status = Command::new(&exe).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("!! {name} failed: {other:?}");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments regenerated", BINS.len());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
