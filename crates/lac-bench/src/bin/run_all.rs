//! Regenerate every result in one run (what EXPERIMENTS.md records).
//!
//! Two data-driven phases, neither hard-coding a kernel or a figure:
//!
//! 1. **Workload sweep** — iterate `lac_kernels::registry()`, run every
//!    workload through a `LacEngine` session on the default core, verify
//!    it against `linalg-ref`, and print the uniform cycles/utilization/
//!    energy table.
//! 2. **Figure/table generators** — discover the sibling generator
//!    binaries (`fig*`, `table*`, `sec*`) built alongside this one and
//!    invoke each.

use lac_bench::{f, pct, table};
use lac_kernels::registry;
use lac_power::{EnergyModel, SessionEnergy};
use lac_sim::{LacConfig, LacEngine};
use std::path::PathBuf;
use std::process::Command;

fn workload_sweep() -> Result<(), String> {
    let mut rows = Vec::new();
    let energy = EnergyModel::lac_default();
    for w in registry() {
        let mut eng = LacEngine::builder()
            .config(w.config(LacConfig::default()))
            .build();
        let report = w
            .run(&mut eng)
            .map_err(|e| format!("{}: {e:?}", w.name()))?;
        w.check(&report)?;
        let e = eng.energy_summary(&energy);
        rows.push(vec![
            report.kernel.clone(),
            format!("{}", report.stats.cycles),
            format!("{}", report.useful_flops),
            pct(report.utilization),
            f(e.energy_nj / 1000.0),
            f(e.gflops_per_w),
            "ok".into(),
        ]);
    }
    table(
        "Workload sweep — every registry workload on the default 4x4 core",
        &[
            "workload",
            "cycles",
            "useful flops",
            "util",
            "energy [uJ]",
            "GFLOPS/W",
            "vs ref",
        ],
        &rows,
    );
    Ok(())
}

fn is_generator_name(n: &str) -> bool {
    n.starts_with("fig")
        || n.starts_with("table")
        || n.starts_with("sec")
        || n.starts_with("chip")
        || n.starts_with("cluster")
        || n.starts_with("solver")
        || n.starts_with("service")
        || n.starts_with("dynamic")
        || n.starts_with("sim_")
}

/// Generators that support `--json-out <path>`: they print their table
/// and write machine-readable perf points in one run, which this driver
/// archives next to the binaries (`target/release/perf/`). An explicit
/// list (unlike bin discovery) because probing would mean extra runs;
/// extend it when a bin gains the flag.
fn emits_json(n: &str) -> bool {
    n == "chip_scaling"
        || n == "cluster_scaling"
        || n == "solver_loop"
        || n == "service_throughput"
        || n == "service_latency"
        || n == "failure_drill"
        || n == "dynamic_solver"
        || n == "sim_speed"
}

/// Generator binaries built next to this one (no hard-coded list).
fn discover_generators(dir: &PathBuf) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| {
                    e.path().extension().is_none()
                        || e.path().extension().is_some_and(|x| x == "exe")
                })
                .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
                .filter_map(|e| {
                    e.path()
                        .file_stem()
                        .and_then(|s| s.to_str().map(String::from))
                })
                .filter(|n| is_generator_name(n))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

/// The full generator set, from this crate's `src/bin/` sources (path baked
/// in at compile time). Guards against a stale or partial target directory
/// silently shrinking the sweep; empty when the source tree is not present
/// at run time (e.g. an installed binary), in which case discovery alone
/// decides.
fn expected_generators() -> Vec<String> {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut names: Vec<String> = std::fs::read_dir(src)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "rs"))
                .filter_map(|e| {
                    e.path()
                        .file_stem()
                        .and_then(|s| s.to_str().map(String::from))
                })
                .filter(|n| is_generator_name(n))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

fn main() {
    println!("######## workload sweep (LacEngine + registry) ########");
    if let Err(e) = workload_sweep() {
        eprintln!("!! workload sweep failed: {e}");
        std::process::exit(1);
    }

    let me = std::env::current_exe().expect("own path");
    let dir: PathBuf = me.parent().expect("bin dir").to_path_buf();
    let bins = discover_generators(&dir);
    if bins.is_empty() {
        eprintln!("!! no generator binaries found next to run_all — build the full crate first");
        std::process::exit(1);
    }
    let mut failures = Vec::new();
    for missing in expected_generators().iter().filter(|n| !bins.contains(n)) {
        eprintln!("!! {missing} exists in src/bin but its binary was not built");
        failures.push(missing.clone());
    }
    for name in &bins {
        let exe = dir.join(name);
        println!("\n######## {name} ########");
        let mut cmd = Command::new(&exe);
        let archive = emits_json(name).then(|| dir.join("perf").join(format!("{name}.json")));
        if let Some(path) = &archive {
            cmd.arg("--json-out").arg(path);
        }
        match cmd.status() {
            Ok(s) if s.success() => {
                if let Some(path) = &archive {
                    if path.is_file() {
                        println!("-> perf points archived to {}", path.display());
                    } else {
                        eprintln!("!! {name} exited 0 but wrote no {}", path.display());
                        failures.push(format!("{name} --json-out"));
                    }
                }
            }
            other => {
                eprintln!("!! {name} failed: {other:?}");
                failures.push(name.clone());
            }
        }
    }
    if failures.is_empty() {
        println!(
            "\nall {} experiments regenerated (+ workload sweep)",
            bins.len()
        );
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
