//! Figure 3.6: PE efficiency metrics vs frequency — 1 GHz is the sweet spot.
use lac_bench::{f, table};
use lac_power::{PeModel, Precision};

fn main() {
    let pe = PeModel {
        precision: Precision::Single,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for fr in [0.3f64, 0.5, 0.75, 1.0, 1.32, 1.6, 1.8, 2.08] {
        let m = pe.metrics(fr);
        rows.push(vec![
            format!("{fr:.2}"),
            f(1.0 / m.gflops_per_mm2),   // mm^2/GFLOP
            f(1000.0 / m.gflops_per_w),  // mW/GFLOP
            f(1000.0 / m.gflops2_per_w), // energy-delay (scaled)
        ]);
    }
    table(
        "Figure 3.6 — PE efficiency metrics vs frequency (SP)",
        &["GHz", "mm^2/GFLOP", "mW/GFLOP", "energy-delay (x1e-3)"],
        &rows,
    );
    println!("\npaper: \"1 GHz appears to be the sweet-spot of the design\"");
}
