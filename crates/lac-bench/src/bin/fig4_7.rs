//! Figure 4.7: area of a single PE vs local-store size (45 nm).
use lac_bench::{f, table};
use lac_power::{PeModel, SramModel};

fn main() {
    let mut rows = Vec::new();
    for kb in [2usize, 4, 6, 8, 10, 12, 14, 16, 18] {
        let pe = PeModel {
            local_store_bytes: kb * 1024,
            ..Default::default()
        };
        let sram = SramModel::new(kb * 1024, 2);
        rows.push(vec![
            format!("{kb}"),
            f(sram.area_mm2()),
            f(pe.fmac().area_mm2()),
            f(pe.area_mm2()),
        ]);
    }
    table(
        "Figure 4.7 — PE area vs local store (45 nm, DP)",
        &["KB", "local store mm^2", "FPU mm^2", "PE mm^2"],
        &rows,
    );
    println!("\npaper: at 18 KB the store is ~2/3 of the PE, linear in capacity");
}
