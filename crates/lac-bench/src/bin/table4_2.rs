//! Table 4.2: 45 nm scaled performance and area of systems running GEMM.
use lac_bench::{f, pct, table};
use lac_power::platform_systems_table;

fn main() {
    let rows: Vec<Vec<String>> = platform_systems_table()
        .into_iter()
        .map(|r| {
            vec![
                r.name.into(),
                format!("{:?}", r.precision),
                f(r.gflops),
                f(r.w_per_mm2),
                f(r.gflops_per_mm2),
                f(r.gflops_per_w),
                f(r.gflops * r.gflops_per_w),
                pct(r.utilization),
            ]
        })
        .collect();
    table(
        "Table 4.2 — systems running GEMM",
        &[
            "system",
            "prec",
            "GFLOPS",
            "W/mm^2",
            "GFLOPS/mm^2",
            "GFLOPS/W",
            "GFLOPS^2/W",
            "util",
        ],
        &rows,
    );
    println!("\npaper LAP rows: SP 1200 GFLOPS, 30-55 GFLOPS/W; DP 600 GFLOPS, 15-25 GFLOPS/W");
}
