//! Table 4.1: bandwidth and memory requirements of the memory-hierarchy
//! layers, partial vs full overlap.
use lac_bench::{f, table};
use lac_model::ChipGemmModel;

fn main() {
    let m = ChipGemmModel::new(4, 8, 2048, 256);
    let rows: Vec<Vec<String>> = m
        .hierarchy_table()
        .into_iter()
        .map(|r| {
            vec![
                r.level.into(),
                r.variant.into(),
                if r.size_words.is_nan() {
                    "-".into()
                } else {
                    f(r.size_words)
                },
                f(r.bandwidth),
            ]
        })
        .collect();
    table(
        "Table 4.1 — memory hierarchy requirements (S=8, nr=4, n=2048, mc=kc=256)",
        &["layer", "overlap", "size [words]", "BW [words/cycle]"],
        &rows,
    );
}
