//! Table 6.1: Householder computation — simple vs efficient formulation
//! produce identical reflectors (demonstrated numerically).
use lac_bench::{f, table};
use linalg_ref::householder::{house, house_simple};

fn main() {
    let cases: Vec<(f64, Vec<f64>)> = vec![
        (3.0, vec![4.0]),
        (-2.0, vec![1.0, 2.0, 2.0]),
        (0.5, vec![-0.1, 0.7, 0.3, -0.9]),
        (1e150, vec![1e150, -1e150]),
    ];
    let mut rows = Vec::new();
    for (a1, tail) in &cases {
        let simple = house_simple(*a1, tail);
        let eff = house(*a1, tail);
        rows.push(vec![
            format!("alpha1={a1:.1e}, |a21|={}", tail.len()),
            f(simple.rho),
            f(eff.rho),
            f(simple.tau),
            f(eff.tau),
            format!(
                "{:.1e}",
                (simple.rho - eff.rho).abs() + (simple.tau - eff.tau).abs()
            ),
        ]);
    }
    table(
        "Table 6.1 — Householder: simple vs efficient computation",
        &[
            "case",
            "rho (simple)",
            "rho (efficient)",
            "tau (simple)",
            "tau (efficient)",
            "|diff|",
        ],
        &rows,
    );
    println!("\nthe efficient form needs one norm of the tail instead of two passes — the LAC kernel uses it");
}
