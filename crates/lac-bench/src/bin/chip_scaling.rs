//! Multi-core chip scaling: the Chapter 4 story, executed.
//!
//! A fixed queue of blocked-GEMM jobs (the row-panel decomposition of one
//! big `C += A·B`) is dispatched onto a `LacChip` with 1 → 16 cores, the
//! aggregate external bandwidth growing with the core count (the paper's
//! per-core `x = 4` words/cycle share). For every core count the simulated
//! chip utilization is compared against the `ChipGemmModel` prediction at
//! the same design point, and the chip energy model prices the run.
//!
//! The microprogram is a pure function of the job *shape*, so it is built
//! once and shared by every job on every core — only the operand images
//! differ per panel.

use lac_bench::json::Json;
use lac_bench::{emit_json, f, json_mode, pct, table};
use lac_kernels::{gemm_program, GemmDataLayout, GemmParams};
use lac_model::ChipGemmModel;
use lac_power::ChipEnergyModel;
use lac_sim::{
    ChipConfig, ChipJob, ExecStats, JobGraph, LacChip, LacConfig, LacEngine, Program, Scheduler,
    SimError,
};
use linalg_ref::{gemm, max_abs_diff, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Panel depth `kc`: big enough that per-tile pipeline drains cost < 4% of
/// the schedule, so the simulated cores run near the model's compute-bound
/// regime.
const KC: usize = 128;
/// Row-panel height `mc` per job.
const MC: usize = 16;
/// Chip problem dimension: C is N×N, decomposed into N/MC = 16 row-panel
/// jobs — every sweep point up to 16 cores stays fully loaded.
const N: usize = 256;
/// Per-core external bandwidth share, words/cycle (§3.4's `x`).
const X_PER_CORE: usize = 4;

/// One row panel of the chip problem: shared program, private operands.
struct PanelJob<'a> {
    prog: &'a Program,
    image: Vec<f64>,
}

impl ChipJob for PanelJob<'_> {
    type Output = ExecStats;

    fn cost_hint(&self) -> u64 {
        (2 * MC * KC * N) as u64
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<ExecStats, SimError> {
        eng.load_image(self.image.clone());
        eng.run_program(self.prog)
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let a = Matrix::random(N, KC, &mut rng);
    let b = Matrix::random(KC, N, &mut rng);
    let c = Matrix::random(N, N, &mut rng);

    let lay = GemmDataLayout::new(MC, KC, N);
    let params = GemmParams::new(MC, KC, N);
    let base_cfg = LacConfig::default();
    let prog = gemm_program(base_cfg.nr, base_cfg.fpu.pipeline_depth, &lay, &params);
    let queue: Vec<PanelJob> = (0..N / MC)
        .map(|p| PanelJob {
            prog: &prog,
            image: lay.pack(&a.block(p * MC, 0, MC, KC), &b, &c.block(p * MC, 0, MC, N)),
        })
        .collect();

    let energy_model = ChipEnergyModel::lap_default();
    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut baseline_makespan = None;
    for cores in [1usize, 2, 4, 8, 16] {
        let cfg = ChipConfig::new(cores, base_cfg).with_bandwidth_budget(X_PER_CORE * cores);
        let mut chip = LacChip::new(cfg);
        let graph: JobGraph<&PanelJob> = queue.iter().collect();
        let run = chip
            .run_graph(&graph, Scheduler::LeastLoaded)
            .expect("hazard-free schedule");
        let sim_util = run.stats.utilization(base_cfg.nr);

        // Functional spot check: each shard's bank still holds the image of
        // the last panel it ran — unpack and compare against linalg-ref.
        for core in 0..cores {
            let Some(last_job) = run.assignment.iter().rposition(|&owner| owner == core) else {
                continue;
            };
            let got = lay.unpack_c(chip.shard(core).mem().as_slice());
            let mut expect = c.block(last_job * MC, 0, MC, N);
            gemm(&a.block(last_job * MC, 0, MC, KC), &b, &mut expect);
            assert!(
                max_abs_diff(&got, &expect) < 1e-10,
                "core {core} panel {last_job} diverges from linalg-ref"
            );
        }

        // The model's intra-chip bandwidth y is the whole chip's budget.
        let model = ChipGemmModel {
            nr: base_cfg.nr,
            s: cores,
            n: N,
            mc: MC,
            kc: KC,
        };
        let model_util = model.utilization((X_PER_CORE * cores) as f64);
        // Cores beyond the queue length can never be busy; the model
        // assumes work for everyone, so scale its prediction down.
        let loaded = (queue.len() as f64 / cores as f64).min(1.0);
        let predicted = model_util * loaded;

        // The documented invariant, enforced rather than just printed:
        // simulation and closed-form model agree within 5% at every point.
        let rel_err = (sim_util - predicted).abs() / predicted;
        assert!(
            rel_err < 0.05,
            "{cores} cores: sim utilization {sim_util:.4} vs model {predicted:.4} \
             ({:.1}% off)",
            rel_err * 100.0
        );

        let base = *baseline_makespan.get_or_insert(run.stats.makespan_cycles);
        let speedup = base as f64 / run.stats.makespan_cycles as f64;
        let e = energy_model.summarize(&run.stats);
        rows.push(vec![
            format!("{cores}"),
            format!("{}", run.stats.makespan_cycles),
            f(speedup),
            pct(sim_util),
            pct(predicted),
            pct((sim_util - predicted).abs() / predicted),
            f(run.stats.ext_words_per_cycle()),
            f(e.total_nj / 1000.0),
            f(e.gflops_per_w),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("chip_scaling")),
            ("cores", Json::from(cores)),
            ("jobs", Json::from(run.stats.jobs())),
            ("makespan_cycles", Json::from(run.stats.makespan_cycles)),
            ("speedup_vs_1core", Json::from(speedup)),
            ("sim_utilization", Json::from(sim_util)),
            ("model_utilization", Json::from(predicted)),
            (
                "ext_words_per_cycle",
                Json::from(run.stats.ext_words_per_cycle()),
            ),
            ("energy_uj", Json::from(e.total_nj / 1000.0)),
            ("gflops_per_w", Json::from(e.gflops_per_w)),
        ]));
    }
    emit_json(Json::arr(points));
    if json_mode() {
        return;
    }
    table(
        &format!(
            "Chip scaling — {} GEMM row-panel jobs (mc={MC}, kc={KC}, n={N}) across 1..16 \
             cores, {X_PER_CORE} words/cycle/core, shared microprogram",
            N / MC
        ),
        &[
            "cores",
            "makespan",
            "speedup",
            "sim util",
            "model util",
            "|err|",
            "ext w/cyc",
            "energy [uJ]",
            "GFLOPS/W",
        ],
        &rows,
    );
}
