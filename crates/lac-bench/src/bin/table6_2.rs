//! Table 6.2 / B.3: the hybrid LA/FFT core vs alternatives for
//! cache-contained double-precision FFTs.
use lac_bench::{f, table};
use lac_power::fft_designs::fft_platforms_table;
use lac_power::fft_pe_designs;

fn main() {
    let rows: Vec<Vec<String>> = fft_platforms_table()
        .into_iter()
        .map(|r| vec![r.name.into(), f(r.gflops_per_w)])
        .collect();
    table(
        "Table 6.2 — cache-contained DP FFT efficiency (45 nm scaled)",
        &["platform", "GFLOPS/W"],
        &rows,
    );

    let designs = fft_pe_designs(1.0);
    let rows: Vec<Vec<String>> = designs
        .iter()
        .map(|d| {
            vec![
                format!("{:?}", d.design),
                f(d.area_mm2),
                d.la_power_mw.map(f).unwrap_or("-".into()),
                d.fft_power_mw.map(f).unwrap_or("-".into()),
                d.la_gflops_per_w.map(f).unwrap_or("-".into()),
                d.fft_gflops_per_w.map(f).unwrap_or("-".into()),
            ]
        })
        .collect();
    table(
        "Table B.3 — PE designs: dedicated LA, dedicated FFT, hybrid (1 GHz, DP)",
        &[
            "design",
            "area mm^2",
            "LA mW",
            "FFT mW",
            "LA GFLOPS/W",
            "FFT GFLOPS/W",
        ],
        &rows,
    );
    println!("\npaper: hybrid within a few % of each dedicated design; order of magnitude above CPUs for FFT");
}
