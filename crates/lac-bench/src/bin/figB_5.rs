//! Figure B.5: bandwidth required for full overlap, worst case, per problem.
use lac_bench::{f, table};
use lac_model::{FftCoreModel, FftVariant};

fn main() {
    let m = FftCoreModel::default();
    let mut rows = Vec::new();
    for n in [64usize, 4096, 65536] {
        rows.push(vec![
            format!("{n}-pt 1D"),
            f(m.overlap_bandwidth()),
            f(m.avg_comm_load(n, FftVariant::Overlapped, 4.0)),
        ]);
    }
    table(
        "Figure B.5 — words/cycle for full overlap (cap: 4 doubles/cycle on the column buses)",
        &["problem", "worst-case demand", "average load"],
        &rows,
    );
}
