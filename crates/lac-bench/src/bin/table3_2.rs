//! Table 3.2: 45 nm scaled performance and area of various cores running
//! GEMM — published comparators plus our modeled LAC.
use lac_bench::{f, pct, table};
use lac_power::platform_cores_table;

fn main() {
    let rows: Vec<Vec<String>> = platform_cores_table()
        .into_iter()
        .map(|r| {
            vec![
                r.name.into(),
                format!("{:?}", r.precision),
                f(r.w_per_mm2),
                f(r.gflops_per_mm2),
                f(r.gflops_per_w),
                pct(r.utilization),
            ]
        })
        .collect();
    table(
        "Table 3.2 — cores running GEMM (paper data + our modeled LAC)",
        &["core", "prec", "W/mm^2", "GFLOPS/mm^2", "GFLOPS/W", "util"],
        &rows,
    );
    println!("\npaper LAC rows: SP 0.2 W/mm^2, 19.5 GFLOPS/mm^2, 104 GFLOPS/W; DP 0.3, 15.6, 47");
}
