//! Figures 4.9/4.10: area and power efficiency of cores + on-chip SRAM for
//! a 128-MAC system (S=8 4x4 cores), across on-chip memory sizes.
use lac_bench::{f, table};
use lac_power::{chip_metrics, core_metrics, PeModel, SramModel};

fn main() {
    let pe = PeModel::default();
    let mut rows = Vec::new();
    for mb in [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let bytes = (mb * 1024.0 * 1024.0) as usize;
        let cores = core_metrics(&pe, 4, 1.0, 0.95);
        let chip = chip_metrics(&pe, 4, 8, 1.0, 0.95, bytes, 4.0);
        let mem = SramModel::new(bytes, 2);
        rows.push(vec![
            f(mb),
            f(cores.area_mm2 * 8.0),
            f(mem.area_mm2()),
            f(chip.area_mm2),
            f(1000.0 / chip.gflops_per_w),
        ]);
    }
    table(
        "Figures 4.9/4.10 — area [mm^2] and power [mW/GFLOP] vs on-chip SRAM (S=8, n=2048)",
        &[
            "mem MB",
            "cores mm^2",
            "on-chip mem mm^2",
            "chip mm^2",
            "chip mW/GFLOP",
        ],
        &rows,
    );
    println!("\npaper: with domain-specific SRAM nearly all chip power is in the cores; memory trade-offs negligible");
}
