//! Simulator-throughput micro-bench: host seconds per simulated
//! megacycle.
//!
//! Everything else in `lac-bench` reports *simulated* cycles — machine
//! numbers that never move between hosts. This bin measures the one thing
//! those reports hide: how fast the simulator itself chews through them.
//! A fixed solver-loop graph (`SolverLoopWorkload`) is served repeatedly
//! on a `LacService` at 1 and 4 cores, wall-clock timed, and reported as
//! `host_seconds_per_megacycle` / `megacycles_per_host_second`.
//!
//! The host-time fields are machine-dependent by design and therefore
//! **ungated** — they are archived for trend-watching, not regression
//! gating. The `makespan_cycles` of the timed graph *is* gated: it pins
//! that the workload being timed hasn't silently changed shape, so two
//! archives' host numbers are comparable.

use lac_bench::json::Json;
use lac_bench::{emit_json, f, json_mode, table};
use lac_kernels::{SolverLoopParams, SolverLoopWorkload};
use lac_sim::{ChipConfig, LacConfig, LacService, Scheduler};
use std::time::Instant;

/// Timed submissions per row (after one untimed warmup).
const RUNS: u32 = 4;

fn main() {
    let w = SolverLoopWorkload::new(SolverLoopParams {
        n: 16,
        rounds: 6,
        panels: 4,
        width: 8,
        salt: 4242,
    });
    let mut rows = Vec::new();
    let mut points = Vec::new();

    for cores in [1usize, 4] {
        let mut svc = LacService::new(ChipConfig::new(cores, LacConfig::default()));
        // Warmup: spin up the persistent workers and fault in the code
        // paths outside the timed region.
        let warm = svc
            .submit(w.graph().graph, Scheduler::CriticalPath)
            .expect("warmup run");
        w.check_graph(&warm.outputs)
            .expect("outputs match linalg-ref");

        let start = Instant::now();
        let mut simulated_cycles = 0u64;
        for _ in 0..RUNS {
            let run = svc
                .submit(w.graph().graph, Scheduler::CriticalPath)
                .expect("timed run");
            simulated_cycles += run.stats.makespan_cycles;
        }
        let host_seconds = start.elapsed().as_secs_f64();

        // The simulated side is exact and repeatable; only host time varies.
        assert_eq!(
            simulated_cycles,
            RUNS as u64 * warm.stats.makespan_cycles,
            "timed runs must replay the warmup bit for bit"
        );
        let megacycles = simulated_cycles as f64 / 1e6;
        let sec_per_mc = host_seconds / megacycles;
        rows.push(vec![
            format!("{cores}"),
            format!("{}", w.graph().graph.len()),
            format!("{}", warm.stats.makespan_cycles),
            format!("{RUNS}"),
            format!("{:.3}", sec_per_mc),
            f(megacycles / host_seconds),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("sim_speed")),
            ("cores", Json::from(cores)),
            ("jobs", Json::from(w.graph().graph.len())),
            ("runs", Json::from(RUNS as u64)),
            ("makespan_cycles", Json::from(warm.stats.makespan_cycles)),
            ("host_seconds_per_megacycle", Json::from(sec_per_mc)),
            (
                "megacycles_per_host_second",
                Json::from(megacycles / host_seconds),
            ),
        ]));
    }

    emit_json(Json::arr(points));
    if !json_mode() {
        table(
            "Simulator throughput — host seconds per simulated megacycle \
             (host fields machine-dependent, ungated; makespan gated to pin \
             the timed workload)",
            &[
                "cores",
                "jobs",
                "makespan_cycles",
                "runs",
                "host_s/Mcycle",
                "Mcycle/host_s",
            ],
            &rows,
        );
    }
}
