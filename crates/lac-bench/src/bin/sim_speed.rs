//! Simulator-throughput micro-bench: host seconds per simulated
//! megacycle, interpreter vs compiled backend.
//!
//! Everything else in `lac-bench` reports *simulated* cycles — machine
//! numbers that never move between hosts. This bin measures the one thing
//! those reports hide: how fast the simulator itself chews through them.
//! A fixed solver-loop graph (`SolverLoopWorkload`) is served repeatedly
//! on a `LacService` at 1 and 4 cores, once per [`ExecBackend`],
//! wall-clock timed, and reported as `host_seconds_per_megacycle` /
//! `megacycles_per_host_second`.
//!
//! The host-time fields are machine-dependent by design and therefore
//! **ungated** — they are archived for trend-watching, not regression
//! gating. Three things *are* pinned:
//!
//! * `makespan_cycles` of the timed graph, so two archives' host numbers
//!   time the same workload;
//! * cross-backend makespan equality, asserted here — the backends are
//!   bit-identical by contract (see `docs/PERFORMANCE.md`);
//! * `compiled_speedup` at 1 core: the measured compiled/interpreter
//!   throughput ratio, clamped to the contractual floor of 3× so the
//!   archived value is host-independent. `perf_compare` gates it as a
//!   worse-if-lower metric; the raw ratio is archived alongside as
//!   `compiled_over_interpreter_measured`.

use lac_bench::json::Json;
use lac_bench::{emit_json, f, json_mode, table};
use lac_kernels::{SolverLoopParams, SolverLoopWorkload};
use lac_sim::{ChipConfig, ExecBackend, LacConfig, LacService, Scheduler};
use std::time::Instant;

/// Timed submissions per row (after one untimed warmup).
const RUNS: u32 = 4;

/// Contractual compiled-over-interpreter throughput floor at 1 core.
const SPEEDUP_FLOOR: f64 = 3.0;

fn backend_name(b: ExecBackend) -> &'static str {
    match b {
        ExecBackend::Interpreter => "interpreter",
        ExecBackend::Compiled => "compiled",
    }
}

fn main() {
    let w = SolverLoopWorkload::new(SolverLoopParams {
        n: 16,
        rounds: 6,
        panels: 4,
        width: 8,
        salt: 4242,
    });
    let mut rows = Vec::new();
    let mut points = Vec::new();

    for cores in [1usize, 4] {
        let mut makespans = Vec::new();
        let mut rates = Vec::new();
        for backend in [ExecBackend::Interpreter, ExecBackend::Compiled] {
            let cfg = LacConfig {
                backend,
                ..LacConfig::default()
            };
            let mut svc = LacService::new(ChipConfig::new(cores, cfg));
            // Warmup: spin up the persistent workers, fault in the code
            // paths, and (for the compiled backend) populate the
            // service-wide compile cache outside the timed region.
            let warm = svc
                .submit(w.graph().graph, Scheduler::CriticalPath)
                .expect("warmup run");
            w.check_graph(&warm.outputs)
                .expect("outputs match linalg-ref");

            let start = Instant::now();
            let mut simulated_cycles = 0u64;
            for _ in 0..RUNS {
                let run = svc
                    .submit(w.graph().graph, Scheduler::CriticalPath)
                    .expect("timed run");
                simulated_cycles += run.stats.makespan_cycles;
            }
            let host_seconds = start.elapsed().as_secs_f64();

            // The simulated side is exact and repeatable; only host time
            // varies.
            assert_eq!(
                simulated_cycles,
                RUNS as u64 * warm.stats.makespan_cycles,
                "timed runs must replay the warmup bit for bit"
            );
            let megacycles = simulated_cycles as f64 / 1e6;
            let sec_per_mc = host_seconds / megacycles;
            makespans.push(warm.stats.makespan_cycles);
            rates.push(megacycles / host_seconds);
            rows.push(vec![
                format!("{cores}"),
                backend_name(backend).to_string(),
                format!("{}", w.graph().graph.len()),
                format!("{}", warm.stats.makespan_cycles),
                format!("{RUNS}"),
                format!("{:.3}", sec_per_mc),
                f(megacycles / host_seconds),
            ]);
            points.push(Json::obj([
                ("bench", Json::from("sim_speed")),
                ("backend", Json::from(backend_name(backend))),
                ("cores", Json::from(cores)),
                ("jobs", Json::from(w.graph().graph.len())),
                ("runs", Json::from(RUNS as u64)),
                ("makespan_cycles", Json::from(warm.stats.makespan_cycles)),
                ("host_seconds_per_megacycle", Json::from(sec_per_mc)),
                (
                    "megacycles_per_host_second",
                    Json::from(megacycles / host_seconds),
                ),
            ]));
        }

        // Bit-identical backends must simulate the same machine.
        assert_eq!(
            makespans[0], makespans[1],
            "interpreter and compiled backends disagree on makespan at {cores} cores"
        );

        // Gate the speedup contract where the measurement is cleanest: a
        // single worker core, no thread-scheduling noise.
        if cores == 1 {
            let measured = rates[1] / rates[0];
            assert!(
                measured >= SPEEDUP_FLOOR,
                "compiled backend is only {measured:.2}x the interpreter at 1 core \
                 (contract: >= {SPEEDUP_FLOOR}x)"
            );
            points.push(Json::obj([
                ("bench", Json::from("sim_speed")),
                ("backend", Json::from("ratio")),
                ("cores", Json::from(cores)),
                ("compiled_speedup", Json::from(measured.min(SPEEDUP_FLOOR))),
                ("compiled_over_interpreter_measured", Json::from(measured)),
            ]));
            rows.push(vec![
                format!("{cores}"),
                "ratio".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("{measured:.2}x"),
            ]);
        }
    }

    emit_json(Json::arr(points));
    if !json_mode() {
        table(
            "Simulator throughput — host seconds per simulated megacycle \
             (host fields machine-dependent, ungated; makespan gated to pin \
             the timed workload; compiled_speedup gated at its 3x floor)",
            &[
                "cores",
                "backend",
                "jobs",
                "makespan_cycles",
                "runs",
                "host_s/Mcycle",
                "Mcycle/host_s",
            ],
            &rows,
        );
    }
}
