//! Figure 3.7: power efficiency and energy-delay vs area efficiency across
//! frequencies.
use lac_bench::{f, table};
use lac_power::{PeModel, Precision};

fn main() {
    let pe = PeModel {
        precision: Precision::Single,
        ..Default::default()
    };
    let mut rows = Vec::new();
    for fr in [2.08f64, 1.8, 1.32, 1.0, 0.75, 0.5, 0.3] {
        let m = pe.metrics(fr);
        rows.push(vec![
            format!("{fr:.2}"),
            f(1.0 / m.gflops_per_mm2),
            f(1000.0 / m.gflops_per_w),
            f(1000.0 / m.gflops2_per_w),
        ]);
    }
    table(
        "Figure 3.7 — trade-off: area vs power efficiency vs E-D (SP; low freq at bottom)",
        &["GHz", "mm^2/GFLOP", "mW/GFLOP", "energy-delay (x1e-3)"],
        &rows,
    );
    println!("\npaper: at 1 GHz, >2x area efficiency and E-D vs 0.3 GHz; 40% better power eff. vs 1.8 GHz");
}
