//! Figure 4.16: GFLOPS/W comparison — GPUs/CPU vs equal-throughput LAPs.
use lac_bench::{f, table};
use lac_power::{chip_metrics, PeModel, Precision};

fn main() {
    let mk = |prec, s| {
        let pe = PeModel {
            precision: prec,
            ..Default::default()
        };
        chip_metrics(&pe, 4, s, 1.3, 0.9, 5 * 1024 * 1024, 4.0)
    };
    let rows = vec![
        vec!["GTX480 SGEMM (published)".into(), f(5.2)],
        vec![
            "LAP-30 SP (same throughput, modeled)".into(),
            f(mk(Precision::Single, 30).gflops_per_w),
        ],
        vec!["GTX480 DGEMM (published)".into(), f(2.6)],
        vec![
            "LAP-15 DP (modeled)".into(),
            f(mk(Precision::Double, 15).gflops_per_w),
        ],
        vec!["GTX280 SGEMM (published)".into(), f(2.6)],
        vec![
            "LAP-15 SP (modeled)".into(),
            f(mk(Precision::Single, 15).gflops_per_w),
        ],
        vec!["Penryn DGEMM (published)".into(), f(0.6)],
        vec![
            "LAP-2 DP (modeled)".into(),
            f(mk(Precision::Double, 2).gflops_per_w),
        ],
    ];
    table(
        "Figure 4.16 — chip-level GFLOPS/W",
        &["system", "GFLOPS/W"],
        &rows,
    );
    println!(
        "\npaper shape: each LAP an order of magnitude above its throughput-matched counterpart"
    );
}
