//! Figure 4.5: external bandwidth vs on-chip memory size trade-off
//! (blocking layer of Figure 4.4), for several original problem sizes.
use lac_bench::{f, table};
use lac_model::ChipGemmModel;

fn main() {
    let mut rows = Vec::new();
    for n in [512usize, 1024, 2048] {
        for d in [1usize, 2, 4, 8] {
            let ns = n / d;
            let k = d.min(2); // sub-blocks held on chip
            let m = ChipGemmModel::new(4, 8, n, 128.min(ns));
            let mem_mb = (k * ns * ns) as f64 * 8.0 / 1024.0 / 1024.0;
            rows.push(vec![
                format!("{n}"),
                format!("{ns}"),
                f(mem_mb),
                f(m.offchip_bandwidth_shrunk(ns, k) * 8.0),
            ]);
        }
    }
    table(
        "Figure 4.5 — external bandwidth vs on-chip memory (util > 92%)",
        &[
            "n",
            "ns (sub-block)",
            "on-chip mem [MB]",
            "ext BW [bytes/cycle]",
        ],
        &rows,
    );
    println!("\npaper shape: demand rises as memory shrinks; larger original problems demand less");
}
