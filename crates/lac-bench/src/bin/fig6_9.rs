//! Figure 6.9: efficiency of the FFT/hybrid designs normalized to the
//! original LAC at 1 GHz.
use lac_bench::{f, table};
use lac_power::{fft_pe_designs, PeDesign};

fn main() {
    let designs = fft_pe_designs(1.0);
    let base = designs
        .iter()
        .find(|d| d.design == PeDesign::DedicatedLinearAlgebra)
        .and_then(|d| d.la_gflops_per_w)
        .unwrap();
    let rows: Vec<Vec<String>> = designs
        .iter()
        .map(|d| {
            vec![
                format!("{:?}", d.design),
                d.la_gflops_per_w.map(|e| f(e / base)).unwrap_or("-".into()),
                d.fft_gflops_per_w
                    .map(|e| f(e / base))
                    .unwrap_or("-".into()),
                f(d.area_mm2 / designs[0].area_mm2),
            ]
        })
        .collect();
    table(
        "Figure 6.9 — efficiency normalized to the original LAC (1 GHz)",
        &["design", "LA eff (norm)", "FFT eff (norm)", "area (norm)"],
        &rows,
    );
    println!("\npaper: the hybrid keeps ~all the LA efficiency while adding FFT capability");
}
