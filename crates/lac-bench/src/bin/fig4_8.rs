//! Figure 4.8: leakage, local store, and total PE power efficiency vs
//! local-store size.
use lac_bench::{f, table};
use lac_power::PeModel;

fn main() {
    let mut rows = Vec::new();
    for kb in [2usize, 4, 6, 8, 10, 12, 14, 16, 18] {
        let pe = PeModel {
            local_store_bytes: kb * 1024,
            ..Default::default()
        };
        let m = pe.metrics(1.0);
        rows.push(vec![
            format!("{kb}"),
            f(m.pe_mw / m.gflops),
            f(m.memory_mw / m.gflops),
            f(m.fmac_mw / m.gflops),
            f(pe.sram().leakage_mw() / m.gflops),
        ]);
    }
    table(
        "Figure 4.8 — PE mW/GFLOP vs local store (1 GHz, DP)",
        &["KB", "PE", "local store", "FPU", "leakage"],
        &rows,
    );
    println!("\npaper: FPU dominates; smaller stores use less power but raise density and on-chip BW demand");
}
