//! Table 3.1: 45 nm scaled performance and area for a LAP PE with 16 KB of
//! dual-ported SRAM, across frequencies and precisions.
use lac_bench::{f, table};
use lac_power::{PeModel, Precision};

fn main() {
    let mut rows = Vec::new();
    for (prec, label, freqs) in [
        (Precision::Single, "SP", vec![2.08, 1.32, 0.98, 0.50]),
        (Precision::Double, "DP", vec![1.81, 0.95, 0.33, 0.20]),
    ] {
        let pe = PeModel {
            precision: prec,
            ..Default::default()
        };
        for fr in freqs {
            let m = pe.metrics(fr);
            rows.push(vec![
                label.into(),
                format!("{fr:.2}"),
                f(m.area_mm2),
                f(m.memory_mw),
                f(m.fmac_mw),
                f(m.pe_mw),
                f(m.w_per_mm2),
                f(m.gflops_per_mm2),
                f(m.gflops_per_w),
                f(m.gflops2_per_w),
            ]);
        }
    }
    table(
        "Table 3.1 — PE performance/area, 45 nm (model)",
        &[
            "prec",
            "GHz",
            "area mm^2",
            "mem mW",
            "FMAC mW",
            "PE mW",
            "W/mm^2",
            "GFLOP/mm^2",
            "GFLOPS/W",
            "GFLOPS^2/W",
        ],
        &rows,
    );
    println!(
        "\npaper anchors: SP@0.98GHz: 15.9 mW, 113 GFLOPS/W; DP@0.95GHz: 38 mW, 46.4 GFLOPS/W"
    );
}
