//! Figures B.11/B.12/B.13: actual and maximum PE power, and PE area
//! breakdown, for the three designs at 1 GHz.
use lac_bench::{f, table};
use lac_power::fft_pe_designs;

fn main() {
    let rows: Vec<Vec<String>> = fft_pe_designs(1.0)
        .iter()
        .map(|d| {
            vec![
                format!("{:?}", d.design),
                d.la_power_mw.map(f).unwrap_or("-".into()),
                d.fft_power_mw.map(f).unwrap_or("-".into()),
                f(d.max_power_mw),
                f(d.area_mm2),
            ]
        })
        .collect();
    table(
        "Figures B.11-13 — PE power (per workload, max) and area per design (1 GHz)",
        &["design", "LA mW", "FFT mW", "max mW", "area mm^2"],
        &rows,
    );
}
