//! Figure 4.2: on-chip bandwidth vs memory size for different core
//! organizations and problem sizes (fixed 128 PEs total).
use lac_bench::{f, table};
use lac_model::ChipGemmModel;

fn main() {
    let mut rows = Vec::new();
    for (nr, s) in [(4usize, 8usize), (8, 2)] {
        for n in [512usize, 1024, 2048] {
            for mc in [32usize, 64, 128, 256, 512] {
                if mc > n {
                    continue;
                }
                let m = ChipGemmModel::new(nr, s, n, mc);
                rows.push(vec![
                    format!("nr={nr} S={s}"),
                    format!("{n}"),
                    format!("{mc}"),
                    f(m.onchip_words() * 8.0 / 1024.0 / 1024.0),
                    f(m.onchip_bandwidth() * 8.0),
                ]);
            }
        }
    }
    table(
        "Figure 4.2 — on-chip bandwidth vs memory size (util > 93% along curve)",
        &[
            "organization",
            "n",
            "mc=kc",
            "on-chip mem [MB]",
            "BW [bytes/cycle]",
        ],
        &rows,
    );
    println!("\npaper shape: BW grows quadratically as memory shrinks; fewer/bigger cores demand much less");
}
