//! Section 4.3: model validation — predicted utilization ceilings for
//! Nvidia Fermi C2050 and ClearSpeed CSX700 vs measured GEMM results.
use lac_bench::{f, pct, table};
use lac_model::{predict_csx, predict_fermi};

fn main() {
    let rows: Vec<Vec<String>> = [predict_fermi(), predict_csx()]
        .into_iter()
        .map(|p| {
            vec![
                p.name.into(),
                f(p.demanded_gbs),
                f(p.available_gbs),
                pct(p.predicted_utilization),
                pct(p.measured_utilization),
            ]
        })
        .collect();
    table(
        "Section 4.3 — memory-hierarchy model validation",
        &[
            "platform",
            "demanded GB/s",
            "available GB/s",
            "predicted ceiling",
            "measured",
        ],
        &rows,
    );
    println!("\npaper: Fermi 74% predicted vs 70% measured; CSX 83% predicted vs 78% measured");
}
