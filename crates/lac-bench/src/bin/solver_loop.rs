//! The dependency-graph service headline: an IPM-style solver loop
//! (CHOL → stacked TRSM fan-out → SYRK updates, round k feeding round
//! k+1) submitted as a `JobGraph` to a persistent `LacService`, swept
//! over iterations × cores × scheduler policies.
//!
//! For every point the run is verified three ways before a row prints:
//!
//! 1. **Correctness** — every per-round factor, solve and update is
//!    checked against an independent `linalg-ref` chain
//!    (`SolverLoopWorkload::check_graph`).
//! 2. **Determinism** — the submission is rerun on the same warm service
//!    and must be bit-identical; across the three policies the outputs
//!    must also be bit-identical (placement can never change results).
//! 3. **Scaling** — at the deepest sweep point the 4-core service must
//!    beat the 1-core service by ≥ 1.5x despite the serial CHOL spine
//!    (the paper's fan-out argument, executed).
//!
//! `--json` emits the perf points machine-readably (archived by
//! `run_all`).

use lac_bench::json::Json;
use lac_bench::{emit_json, f, json_mode, pct, table};
use lac_kernels::{SolverLoopParams, SolverLoopWorkload};
use lac_power::ChipEnergyModel;
use lac_sim::{ChipConfig, LacConfig, LacService, Scheduler};

const ROUNDS_SWEEP: [usize; 3] = [2, 4, 8];
const CORES_SWEEP: [usize; 4] = [1, 2, 4, 8];
const POLICIES: [(Scheduler, &str); 3] = [
    (Scheduler::Fifo, "fifo"),
    (Scheduler::LeastLoaded, "least-loaded"),
    (Scheduler::CriticalPath, "critical-path"),
];

fn workload(rounds: usize) -> SolverLoopWorkload {
    SolverLoopWorkload::new(SolverLoopParams {
        n: 16,
        rounds,
        panels: 4,
        width: 8,
        salt: 4242,
    })
}

fn main() {
    let nr = LacConfig::default().nr;
    let energy_model = ChipEnergyModel::lap_default();
    let mut rows = Vec::new();
    let mut points = Vec::new();

    // (rounds, cores, policy) → makespan, for the speedup gate below.
    let mut makespans = std::collections::HashMap::new();
    for rounds in ROUNDS_SWEEP {
        let w = workload(rounds);
        // One reference output vector per rounds value: every (policy,
        // cores) combination must reproduce it bit for bit.
        let mut reference_outputs = None;
        for (sched, sched_name) in POLICIES {
            for cores in CORES_SWEEP {
                let mut svc = LacService::new(ChipConfig::new(cores, LacConfig::default()));
                let run = svc
                    .submit(w.graph().graph, sched)
                    .expect("hazard-free schedule");
                w.check_graph(&run.outputs)
                    .expect("per-round outputs match linalg-ref");

                // Warm rerun on the same service: bit-identical.
                let rerun = svc.submit(w.graph().graph, sched).expect("rerun");
                assert_eq!(run.outputs, rerun.outputs, "warm rerun diverged");
                assert_eq!(run.stats, rerun.stats, "warm rerun stats diverged");

                // Across cores AND policies the outputs are the same bits.
                match &reference_outputs {
                    None => reference_outputs = Some(run.outputs.clone()),
                    Some(base) => assert_eq!(
                        base, &run.outputs,
                        "{sched_name}@{cores} cores changed results"
                    ),
                }
                makespans.insert((rounds, cores, sched_name), run.stats.makespan_cycles);

                let e = energy_model.summarize(&run.stats);
                let util = run.stats.utilization(nr);
                // Aggregate busy cycles / makespan — parallel efficiency
                // of this run, not a 1-core-baseline ratio (the gate below
                // computes that one from the recorded makespans).
                let speedup = run.stats.speedup();
                rows.push(vec![
                    format!("{rounds}"),
                    format!("{cores}"),
                    sched_name.into(),
                    format!("{}", run.stats.makespan_cycles),
                    format!("{}", run.waves),
                    pct(util),
                    f(speedup),
                    f(e.total_nj / 1000.0 / rounds as f64),
                    f(e.gflops_per_w),
                ]);
                points.push(Json::obj([
                    ("bench", Json::from("solver_loop")),
                    ("rounds", Json::from(rounds)),
                    ("cores", Json::from(cores)),
                    ("policy", Json::from(sched_name)),
                    ("jobs", Json::from(run.stats.jobs())),
                    ("waves", Json::from(run.waves)),
                    ("makespan_cycles", Json::from(run.stats.makespan_cycles)),
                    (
                        "aggregate_busy_cycles",
                        Json::from(run.stats.aggregate.cycles),
                    ),
                    ("utilization", Json::from(util)),
                    ("speedup_vs_serial", Json::from(speedup)),
                    (
                        "energy_uj_per_round",
                        Json::from(e.total_nj / 1000.0 / rounds as f64),
                    ),
                    ("gflops_per_w", Json::from(e.gflops_per_w)),
                ]));
            }
        }
    }

    // The acceptance gate: ≥ 8 dependent rounds, 4 cores vs 1 core, every
    // policy — the intra-round TRSM/SYRK fan-out must buy ≥ 1.5x even
    // though every round's CHOL serializes. The sweep above already
    // measured both makespans.
    let deepest = *ROUNDS_SWEEP.last().unwrap();
    for (_, sched_name) in POLICIES {
        let makespan_at = |cores: usize| makespans[&(deepest, cores, sched_name)];
        let speedup = makespan_at(1) as f64 / makespan_at(4) as f64;
        assert!(
            speedup >= 1.5,
            "{sched_name}: {deepest}-round loop gained only {speedup:.2}x on 4 cores"
        );
        points.push(Json::obj([
            ("bench", Json::from("solver_loop_speedup_gate")),
            ("rounds", Json::from(deepest)),
            ("policy", Json::from(sched_name)),
            ("speedup_4_vs_1", Json::from(speedup)),
            ("threshold", Json::from(1.5)),
        ]));
    }

    emit_json(Json::arr(points));
    if !json_mode() {
        table(
            "Solver loop — IPM-style CHOL→TRSM→SYRK rounds (n=16, 4 panels × 8 cols) \
             as a JobGraph on a persistent LacService; outputs verified vs linalg-ref, \
             bit-identical across policies/reruns; ≥1.5x @ 4 cores asserted",
            &[
                "rounds", "cores", "policy", "makespan", "waves", "util", "speedup", "uJ/round",
                "GFLOPS/W",
            ],
            &rows,
        );
    }
}
