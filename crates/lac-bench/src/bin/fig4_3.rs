//! Figure 4.3: LAP performance vs on-chip memory for different core counts
//! and total on-chip bandwidths (relative to a single 4x4 core).
use lac_bench::{f, table};
use lac_model::ChipGemmModel;

fn main() {
    let mut rows = Vec::new();
    for (s, bw) in [
        (4usize, 1.0f64),
        (8, 2.0),
        (16, 4.0),
        (4, 4.0),
        (8, 8.0),
        (16, 16.0),
        (4, 8.0),
        (16, 32.0),
    ] {
        for mc in [32usize, 64, 128, 256] {
            let n = 4 * mc; // memory grows with the block size
            let m = ChipGemmModel::new(4, s, n, mc);
            let perf_rel = 100.0 * s as f64 * m.utilization(bw);
            rows.push(vec![
                format!("S={s} BW={bw}"),
                f(m.onchip_words() * 8.0 / 1024.0 / 1024.0),
                f(perf_rel),
            ]);
        }
    }
    table(
        "Figure 4.3 — relative performance [% of one core] vs on-chip memory",
        &["config (words/cyc)", "on-chip mem [MB]", "perf [%]"],
        &rows,
    );
    println!("\npaper shape: same S/BW ratio => similar perf at small memory; more memory unlocks core scaling");
}
