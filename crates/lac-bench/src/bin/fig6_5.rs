//! Figure 6.5: LAC area breakdown with different divide/square-root options.
use lac_bench::{f, table};
use lac_power::{divsqrt_area_breakdown, DivSqrtOption};

fn main() {
    let rows: Vec<Vec<String>> = [
        DivSqrtOption::Software,
        DivSqrtOption::Isolated,
        DivSqrtOption::DiagonalPes,
    ]
    .into_iter()
    .map(|opt| {
        let b = divsqrt_area_breakdown(opt);
        vec![
            format!("{opt:?}"),
            f(b.pes_mm2),
            f(b.mac_extension_mm2),
            f(b.lookup_mm2),
            f(b.special_logic_mm2),
            f(b.total()),
        ]
    })
    .collect();
    table(
        "Figure 6.5 — LAC area with divide/sqrt extensions (mm^2, 45 nm)",
        &[
            "option",
            "PEs",
            "MAC ext",
            "lookup",
            "special logic",
            "total",
        ],
        &rows,
    );
    println!("\npaper: all options within a few percent of the bare 16-PE array (~2.3-2.6 mm^2)");
}
