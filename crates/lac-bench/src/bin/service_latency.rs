//! The open-loop serving headline: tail latency (p50/p99/p999 sojourn)
//! of streamed solver requests, swept over offered load × cluster size,
//! plus an SLO-boost A/B at a contended point.
//!
//! Requests are minted by `lac_kernels::SolverStream` — every arrival is
//! one small interior-point factorization chain (CHOL → TRSM fan-out →
//! SYRK) with operands salted by `(tenant, index)` — and replayed by
//! `lac_traffic::run_open_loop` against a `LacCluster` from a seeded
//! Poisson `ArrivalTrace`. Load is expressed relative to one chip's
//! capacity: `2.0x` offers twice what a single chip can serve, so its
//! queue (and tail) grows with the trace while four chips stay ahead.
//!
//! Verified before any row prints:
//!
//! * every completed request's outputs match the independent
//!   `linalg-ref` chain (`check_graph`);
//! * reruns of a sweep point are bit-identical, report and all;
//! * at the fixed `2.0x` offered load, 4 chips hold p99 sojourn to
//!   ≤ 0.5x of 1 chip (the acceptance gate, also archived for
//!   `perf_compare`);
//! * with a deadline SLO on the interactive tenant, the slack-boosted
//!   fair share strictly improves its p99 vs plain fair share while
//!   leaving every output bit unchanged.
//!
//! `--json` / `--json-out` emit the perf points (archived by `run_all`
//! and gated by `perf_compare` in CI — sojourn metrics regress when they
//! grow).

use lac_bench::json::Json;
use lac_bench::{emit_json, f, json_mode, table};
use lac_kernels::{KernelReport, SolverJob, SolverLoopParams, SolverStream};
use lac_sim::{
    ChipConfig, ClusterConfig, LacChip, LacCluster, LacConfig, Scheduler, TenantConfig, TenantId,
};
use lac_traffic::{
    run_open_loop, Arrival, ArrivalProcess, ArrivalTrace, OpenLoopConfig, OpenLoopReport,
};

const CORES_PER_CHIP: usize = 2;
const CHIPS_SWEEP: [usize; 3] = [1, 2, 4];
/// Offered load relative to one chip's service rate.
const LOADS: [(f64, &str); 2] = [(0.5, "0.5x"), (2.0, "2.0x")];
/// Arrivals in the trace (per tenant stream).
const HORIZON_GAPS: f64 = 120.0;
/// The acceptance gate: at 2.0x load, 4 chips vs 1 chip p99.
const GATE_LOAD: &str = "2.0x";
const GATE_RATIO: f64 = 0.5;
const SEED: u64 = 2013;

fn stream() -> SolverStream {
    SolverStream::new(SolverLoopParams {
        n: 8,
        rounds: 1,
        panels: 2,
        width: 4,
        salt: 400,
    })
}

/// One chip's standalone makespan for a single request — the unit the
/// load factors are expressed against.
fn service_time() -> u64 {
    let mut chip = LacChip::new(ChipConfig::new(CORES_PER_CHIP, LacConfig::default()));
    let w = stream().request(0, 0);
    let run = chip
        .run_graph(&w.graph().graph, Scheduler::CriticalPath)
        .expect("hazard-free schedule");
    run.stats.makespan_cycles
}

fn cluster(chips: usize, configs: &[TenantConfig]) -> (LacCluster<SolverJob>, Vec<TenantId>) {
    let mut c = LacCluster::new(ClusterConfig::homogeneous(
        chips,
        ChipConfig::new(CORES_PER_CHIP, LacConfig::default()),
    ));
    let ids = configs.iter().map(|t| c.add_tenant(t.clone())).collect();
    (c, ids)
}

fn replay(
    chips: usize,
    configs: &[TenantConfig],
    trace: &ArrivalTrace,
    slo_boost: bool,
    max_round_cost: Option<u64>,
) -> OpenLoopReport<KernelReport> {
    let (mut c, ids) = cluster(chips, configs);
    let s = stream();
    let cfg = OpenLoopConfig {
        sched: Scheduler::FairShare,
        slo_boost,
        max_round_cost,
    };
    let report = run_open_loop(
        &mut c,
        trace,
        &ids,
        |a: &Arrival| s.request(a.tenant, a.index).graph().graph,
        cfg,
    )
    .expect("hazard-free open-loop replay");
    assert_eq!(report.completed.len(), trace.len(), "every arrival served");
    report
}

/// Every request's outputs against its own independent reference chain.
fn check_outputs(report: &OpenLoopReport<KernelReport>) {
    let s = stream();
    for c in &report.completed {
        s.request(c.arrival.tenant, c.arrival.index)
            .check_graph(&c.outputs)
            .expect("streamed outputs match linalg-ref");
    }
}

/// Outputs keyed by request identity — the bit-equality projection
/// (latencies legitimately differ across policies; outputs never do).
fn output_bits(report: &OpenLoopReport<KernelReport>) -> Vec<(Arrival, Vec<KernelReport>)> {
    let mut v: Vec<_> = report
        .completed
        .iter()
        .map(|c| (c.arrival, c.outputs.clone()))
        .collect();
    v.sort_by_key(|(a, _)| (a.tenant, a.index));
    v
}

fn main() {
    let unit = service_time();
    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut gate_p99 = [0u64; 2]; // [1 chip, 4 chips] at GATE_LOAD

    // Part 1 — one Poisson tenant, offered load × chips.
    for (factor, load_name) in LOADS {
        let mean_gap = (unit as f64 / factor).max(1.0);
        let horizon = (mean_gap * HORIZON_GAPS) as u64;
        let trace = ArrivalTrace::generate(SEED, horizon, &[ArrivalProcess::Poisson { mean_gap }]);
        for chips in CHIPS_SWEEP {
            let tenants = [TenantConfig::new("poisson")];
            let report = replay(chips, &tenants, &trace, false, None);
            check_outputs(&report);
            // Bit-determinism: a fresh cluster reproduces the replay
            // exactly — sojourns, rounds, outputs and all.
            assert_eq!(
                report,
                replay(chips, &tenants, &trace, false, None),
                "open-loop rerun diverged at {load_name} × {chips} chips"
            );
            let h = &report.per_tenant[0].hist;
            if load_name == GATE_LOAD && chips == 1 {
                gate_p99[0] = h.p99();
            }
            if load_name == GATE_LOAD && chips == 4 {
                gate_p99[1] = h.p99();
            }
            rows.push(vec![
                load_name.into(),
                format!("{chips}"),
                format!("{}", h.count()),
                format!("{}", report.rounds),
                f(h.mean()),
                format!("{}", h.p50()),
                format!("{}", h.p99()),
                format!("{}", h.p999()),
            ]);
            points.push(Json::obj([
                ("bench", Json::from("service_latency")),
                ("load", Json::from(load_name)),
                ("chips", Json::from(chips)),
                ("tenants", Json::from(1u64)),
                ("policy", Json::from("fair-share")),
                ("requests", Json::from(h.count())),
                ("rounds", Json::from(report.rounds)),
                ("mean_sojourn_cycles", Json::from(h.mean())),
                ("p50_sojourn_cycles", Json::from(h.p50())),
                ("p99_sojourn_cycles", Json::from(h.p99())),
                ("p999_sojourn_cycles", Json::from(h.p999())),
            ]));
        }
    }

    // The acceptance gate: at the fixed 2.0x offered load, four chips
    // must hold p99 sojourn to ≤ 0.5x of one chip.
    let [p99_1chip, p99_4chip] = gate_p99;
    let ratio = p99_4chip as f64 / p99_1chip as f64;
    assert!(
        ratio <= GATE_RATIO,
        "at {GATE_LOAD} load, 4 chips held p99 to only {ratio:.2}x of 1 chip \
         (need ≤ {GATE_RATIO}x): {p99_1chip} -> {p99_4chip} cycles"
    );
    points.push(Json::obj([
        ("bench", Json::from("service_latency_gate")),
        ("load", Json::from(GATE_LOAD)),
        ("policy", Json::from("fair-share")),
        ("p99_sojourn_1chip_cycles", Json::from(p99_1chip)),
        ("p99_sojourn_4chip_cycles", Json::from(p99_4chip)),
        ("p99_sojourn_ratio_4chip_vs_1chip", Json::from(ratio)),
        ("threshold", Json::from(GATE_RATIO)),
    ]));

    // Part 2 — SLO A/B: an interactive tenant with a deadline sharing
    // two chips with a bursty batch tenant, plain vs slack-boosted fair
    // share over the identical trace.
    let deadline = 6 * unit;
    // Batch pays for 4x the share: plain fair share then serves its
    // backlog ahead of the interactive trickle, which is the regime the
    // deadline boost exists for.
    let slo_tenants = [
        TenantConfig::new("interactive").with_deadline(deadline),
        TenantConfig::new("batch").with_weight(4),
    ];
    let slo_trace = ArrivalTrace::generate(
        SEED,
        (unit as f64 * HORIZON_GAPS) as u64,
        &[
            ArrivalProcess::Poisson {
                mean_gap: 3.0 * unit as f64,
            },
            ArrivalProcess::OnOff {
                mean_gap_on: unit as f64 / 4.0,
                mean_burst: 6.0,
                mean_gap_off: 4.0 * unit as f64,
            },
        ],
    );
    let plain = replay(2, &slo_tenants, &slo_trace, false, None);
    let boosted = replay(2, &slo_tenants, &slo_trace, true, None);
    check_outputs(&boosted);
    // The boost reorders *when* requests run, never *what* they compute.
    assert_eq!(
        output_bits(&plain),
        output_bits(&boosted),
        "SLO boost changed output bits"
    );
    let (pi, bi) = (&plain.per_tenant[0], &boosted.per_tenant[0]);
    assert!(
        bi.hist.p99() < pi.hist.p99(),
        "SLO boost did not improve the interactive tenant's p99: \
         {} -> {} cycles",
        pi.hist.p99(),
        bi.hist.p99()
    );
    assert!(
        bi.deadline_misses <= pi.deadline_misses,
        "SLO boost increased deadline misses"
    );
    for (policy, rep) in [("fair-share", &plain), ("fair-share+slo", &boosted)] {
        let (int_t, bat_t) = (&rep.per_tenant[0], &rep.per_tenant[1]);
        rows.push(vec![
            "slo-a/b".into(),
            "2".into(),
            format!("{}", int_t.hist.count() + bat_t.hist.count()),
            format!("{}", rep.rounds),
            policy.into(),
            format!("{}", int_t.hist.p50()),
            format!("{}", int_t.hist.p99()),
            format!("{}", int_t.hist.p999()),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("service_latency_slo")),
            ("load", Json::from("slo-a/b")),
            ("chips", Json::from(2u64)),
            ("tenants", Json::from(2u64)),
            ("policy", Json::from(policy)),
            ("deadline_cycles", Json::from(deadline)),
            (
                "interactive_p99_sojourn_cycles",
                Json::from(int_t.hist.p99()),
            ),
            (
                "interactive_deadline_misses",
                Json::from(int_t.deadline_misses),
            ),
            ("batch_p99_sojourn_cycles", Json::from(bat_t.hist.p99())),
        ]));
    }

    // Part 3 — round-quantum A/B: the overloaded 1-chip point again,
    // with `max_round_cost` bounding how much backlog one round may
    // admit. Unbounded rounds serve the whole queue at once, so every
    // rider's sojourn includes the slowest graph's wave; the quantum
    // splits the backlog into shorter rounds and flattens the tail —
    // without touching a single output bit.
    let q_factor = 2.0f64;
    let q_gap = (unit as f64 / q_factor).max(1.0);
    let q_trace = ArrivalTrace::generate(
        SEED,
        (q_gap * HORIZON_GAPS) as u64,
        &[ArrivalProcess::Poisson { mean_gap: q_gap }],
    );
    let request_cost = stream().request(0, 0).graph().graph.total_cost();
    let quantum = 2 * request_cost;
    let tenants = [TenantConfig::new("poisson")];
    let unbounded = replay(1, &tenants, &q_trace, false, None);
    let quantized = replay(1, &tenants, &q_trace, false, Some(quantum));
    check_outputs(&quantized);
    assert_eq!(
        output_bits(&unbounded),
        output_bits(&quantized),
        "round quantum changed output bits"
    );
    let (uh, qh) = (&unbounded.per_tenant[0].hist, &quantized.per_tenant[0].hist);
    assert!(
        qh.p99() < uh.p99(),
        "round quantum did not improve p99 at {q_factor}x load on 1 chip: \
         {} -> {} cycles",
        uh.p99(),
        qh.p99()
    );
    for (policy, rep) in [
        ("fair-share-unbounded", &unbounded),
        ("fair-share+quantum", &quantized),
    ] {
        let h = &rep.per_tenant[0].hist;
        rows.push(vec![
            "2.0x-q".into(),
            "1".into(),
            format!("{}", h.count()),
            format!("{}", rep.rounds),
            policy.into(),
            format!("{}", h.p50()),
            format!("{}", h.p99()),
            format!("{}", h.p999()),
        ]);
        points.push(Json::obj([
            ("bench", Json::from("service_latency_quantum")),
            ("load", Json::from("2.0x")),
            ("chips", Json::from(1u64)),
            ("tenants", Json::from(1u64)),
            ("policy", Json::from(policy)),
            ("rounds", Json::from(rep.rounds)),
            ("p50_sojourn_cycles", Json::from(h.p50())),
            ("p99_sojourn_cycles", Json::from(h.p99())),
            ("p999_sojourn_cycles", Json::from(h.p999())),
        ]));
    }

    emit_json(Json::arr(points));
    if !json_mode() {
        table(
            &format!(
                "Open-loop tail latency — streamed solver requests (n=8, 1 round, 2 panels) \
                 on a LacCluster ({CORES_PER_CHIP} cores/chip), seeded Poisson arrivals; \
                 outputs verified vs linalg-ref, bit-identical reruns; 4-chip p99 ≤ \
                 {GATE_RATIO}x of 1-chip @ {GATE_LOAD} asserted (got {ratio:.2}x); \
                 SLO boost improves interactive p99 with identical output bits \
                 (unit service time {unit} cycles)"
            ),
            &[
                "load",
                "chips",
                "reqs",
                "rounds",
                "mean/policy",
                "p50",
                "p99",
                "p999",
            ],
            &rows,
        );
    }
}
