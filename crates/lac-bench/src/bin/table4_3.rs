//! Table 4.3: qualitative comparison of main design choices.
use lac_bench::table;
use lac_power::compare::design_choice_table;

fn main() {
    let t = design_choice_table();
    let rows: Vec<Vec<String>> = t[1..]
        .iter()
        .map(|r| r.iter().map(|s| s.to_string()).collect())
        .collect();
    table(
        "Table 4.3 — design choices: CPUs vs GPUs vs LAP",
        &t[0],
        &rows,
    );
}
