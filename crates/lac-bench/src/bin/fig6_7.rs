//! Figure 6.7: LU-with-partial-pivoting inner-kernel power efficiency vs
//! extensions and panel height — measured on the simulator through
//! `LacEngine` sessions.
use lac_bench::{f, table};
use lac_kernels::{LuOptions, LuPanelWorkload, Workload};
use lac_power::EnergyModel;
use lac_sim::{LacConfig, LacEngine};
use linalg_ref::Matrix;

fn main() {
    let mut rows = Vec::new();
    for k in [16usize, 32, 64] {
        let kk = k * 4;
        // The 1e-7·i term breaks magnitude ties (the mod-19 pattern repeats),
        // which would otherwise make pivot choice implementation-defined.
        let a = Matrix::from_fn(kk, 4, |i, j| {
            (((i * 7 + j * 13) % 19) as f64 - 9.0) / 5.0
                + i as f64 * 1e-7
                + if i == j { 3.0 } else { 0.0 }
        });
        let mut row = vec![format!("{kk}x4")];
        for (label, comparator) in [("no comparator (SW)", false), ("comparator", true)] {
            let w = LuPanelWorkload::new(a.clone(), LuOptions { comparator });
            let mut eng = LacEngine::builder()
                .config(w.config(LacConfig::default()))
                .build();
            let rep = w.run(&mut eng).expect(label);
            w.check(&rep).expect(label);
            let em = EnergyModel {
                comparator_extension: comparator,
                ..EnergyModel::lac_default()
            };
            row.push(format!(
                "{} ({} cyc)",
                f(em.gflops_per_w(&rep.stats)),
                rep.stats.cycles
            ));
        }
        rows.push(row);
    }
    table(
        "Figure 6.7 — LU(pp) panel GFLOPS/W (simulated cycles + energy model)",
        &["panel", "no comparator", "comparator"],
        &rows,
    );
    println!("\npaper shape: the comparator extension's advantage grows with panel height");
}
