//! Figure 6.7: LU-with-partial-pivoting inner-kernel power efficiency vs
//! extensions and panel height — measured on the simulator.
use lac_bench::{f, table};
use lac_kernels::{lu_panel_matrix, LuOptions};
use lac_power::EnergyModel;
use lac_sim::{Lac, LacConfig};
use linalg_ref::Matrix;

fn main() {
    let mut rows = Vec::new();
    for k in [16usize, 32, 64] {
        let kk = k * 4;
        let a = Matrix::from_fn(kk, 4, |i, j| {
            (((i * 7 + j * 13) % 19) as f64 - 9.0) / 5.0 + if i == j { 3.0 } else { 0.0 }
        });
        let mut row = vec![format!("{kk}x4")];
        for (label, comparator) in [("no comparator (SW)", false), ("comparator", true)] {
            let mut lac = Lac::new(LacConfig::default());
            let (_, _, stats) = lu_panel_matrix(&mut lac, &a, &LuOptions { comparator }).expect(label);
            let em = EnergyModel { comparator_extension: comparator, ..EnergyModel::lac_default() };
            row.push(format!("{} ({} cyc)", f(em.gflops_per_w(&stats)), stats.cycles));
        }
        rows.push(row);
    }
    table(
        "Figure 6.7 — LU(pp) panel GFLOPS/W (simulated cycles + energy model)",
        &["panel", "no comparator", "comparator"],
        &rows,
    );
    println!("\npaper shape: the comparator extension's advantage grows with panel height");
}
