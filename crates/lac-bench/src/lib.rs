//! Shared helpers for the table/figure generator binaries.
//!
//! Every dissertation table and figure has a binary in `src/bin/` named
//! after it (`cargo run -p lac-bench --release --bin fig3_4`); each prints
//! the rows/series the paper reports, plus the paper's published values
//! where applicable so the shape comparison is immediate. `run_all`
//! regenerates everything (that is what EXPERIMENTS.md records).

pub mod json;
pub mod trace_io;

use std::fmt::Display;

/// True when the binary was invoked with `--json` — the bench bins then
/// emit machine-readable perf points instead of tables.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Value of `--json-out <path>`, if present: the bin prints its table as
/// usual *and* writes the perf points there — one simulation, both
/// artifacts (how `run_all` archives without double-running generators).
pub fn json_out_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json-out" {
            return Some(std::path::PathBuf::from(
                args.next().expect("--json-out takes a path"),
            ));
        }
    }
    None
}

/// Handle the two JSON flags at the end of a bench bin: `--json` prints
/// the points to stdout (suppressing the table is the caller's job via
/// [`json_mode`]); `--json-out <path>` writes them to the path. Panics on
/// an unwritable path — an archive silently missing is worse.
pub fn emit_json(points: json::Json) {
    if let Some(path) = json_out_path() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {dir:?}: {e}"));
        }
        std::fs::write(&path, points.render_pretty())
            .unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    }
    if json_mode() {
        println!("{}", points.render_pretty());
    }
}

/// Print a titled table with aligned columns.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a float to a sensible number of digits.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Convenience for building a row out of display values.
pub fn row(cells: &[&dyn Display]) -> Vec<String> {
    cells.iter().map(|c| c.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.4), "123");
        assert_eq!(f(1.234), "1.23");
        assert_eq!(f(0.1234), "0.123");
        assert_eq!(pct(0.905), "90.5%");
    }
}
