//! Minimal hand-rolled JSON serializer *and parser* (the build has no
//! crates.io access, so no serde): enough for the bench binaries'
//! `--json` mode and the perf-baseline comparison — objects, arrays,
//! strings, integers and floats, with escaping. [`Json::parse`] reads
//! back what [`Json::render`]/[`Json::render_pretty`] write (and any
//! other standard JSON document).
//!
//! ```
//! use lac_bench::json::Json;
//! let point = Json::obj([
//!     ("cores", Json::from(4u64)),
//!     ("speedup", Json::from(3.25)),
//!     ("policy", Json::from("critical-path")),
//! ]);
//! assert_eq!(
//!     point.render(),
//!     r#"{"cores":4,"speedup":3.25,"policy":"critical-path"}"#
//! );
//! ```

use std::fmt::Write as _;

/// A JSON value. Build with the `From` impls and [`Json::obj`] /
/// [`Json::arr`]; serialize with [`Json::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers keep full `u64` precision (no float round-trip).
    UInt(u64),
    Int(i64),
    /// Non-finite floats render as `null` (JSON has no NaN/Inf).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Parse a JSON document. Integers without a fraction/exponent come
    /// back as [`Json::UInt`]/[`Json::Int`] (full precision — the
    /// baseline comparison diffs cycle counts exactly), everything else
    /// numeric as [`Json::Num`]. Errors carry the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, whatever numeric variant holds it.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation — what the archived perf
    /// points use so diffs stay readable.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Recursive-descent parser over the raw bytes (JSON structure is ASCII;
/// string contents pass through as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates never appear in our own output;
                            // map them to the replacement character
                            // rather than failing the whole file.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar through verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is valid JSON for finite f64,
        // but renders whole floats without a decimal point ("3"), which
        // would re-parse as Json::UInt and break Num round-trips — keep
        // the float-ness explicit with a trailing ".0".
        let start = out.len();
        let _ = write!(out, "{v}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        let v = Json::obj([
            ("name", Json::from("chip \"A\"\n")),
            ("cores", Json::from(16u64)),
            ("util", Json::from(0.875)),
            ("nan", Json::from(f64::NAN)),
            ("flags", Json::arr([Json::from(true), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"chip \"A\"\n","cores":16,"util":0.875,"nan":null,"flags":[true,null]}"#
        );
    }

    #[test]
    fn integers_keep_full_precision() {
        let big = u64::MAX;
        assert_eq!(Json::from(big).render(), big.to_string());
        assert_eq!(Json::from(-42i64).render(), "-42");
    }

    #[test]
    fn floats_roundtrip_shortest() {
        assert_eq!(Json::from(0.1).render(), "0.1");
        // Whole floats keep an explicit ".0" so they re-parse as Num,
        // not UInt.
        assert_eq!(Json::from(3.0).render(), "3.0");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn negative_numbers_round_trip() {
        for v in [
            Json::Int(-7),
            Json::Int(i64::MIN),
            Json::Num(-2.5),
            Json::Num(-1000.0),
        ] {
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{}", v.render());
        }
        assert_eq!(Json::parse("-0.125").unwrap(), Json::Num(-0.125));
    }

    #[test]
    fn exponent_floats_round_trip() {
        // Whole-valued floats — whether written with an exponent or not —
        // must come back as Num, never silently reclassified as UInt.
        for (text, v) in [("1e3", 1000.0), ("2.5E-2", 0.025), ("-4e2", -400.0)] {
            let parsed = Json::parse(text).unwrap();
            assert_eq!(parsed, Json::Num(v), "{text}");
            assert_eq!(Json::parse(&parsed.render()).unwrap(), parsed, "{text}");
        }
        assert_eq!(
            Json::parse(&Json::Num(1e300).render()).unwrap(),
            Json::Num(1e300)
        );
    }

    #[test]
    fn pretty_nests_with_two_spaces() {
        let v = Json::obj([("rows", Json::arr([Json::from(1u64)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"rows\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::arr([]).render_pretty(), "[]\n");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_what_render_writes() {
        let v = Json::obj([
            ("bench", Json::from("service_throughput")),
            ("cores", Json::from(4u64)),
            ("delta", Json::from(-3i64)),
            ("speedup", Json::from(2.4375)),
            ("ok", Json::from(true)),
            ("note", Json::from("tabs\tand \"quotes\" and ünïcode")),
            (
                "nested",
                Json::arr([Json::Null, Json::obj([("k", Json::from(1u64))])]),
            ),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_keeps_integer_precision_and_classifies_numbers() {
        let v = Json::parse(r#"[18446744073709551615, -7, 0.5, 1e3]"#).unwrap();
        let Json::Arr(items) = &v else { panic!() };
        assert_eq!(items[0], Json::UInt(u64::MAX));
        assert_eq!(items[1], Json::Int(-7));
        assert_eq!(items[2], Json::Num(0.5));
        assert_eq!(items[3], Json::Num(1000.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors_read_fields_and_numbers() {
        let v = Json::parse(r#"{"name":"x","n":3}"#).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("missing"), None);
    }
}
