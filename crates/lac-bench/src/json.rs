//! Minimal hand-rolled JSON serializer (the build has no crates.io
//! access, so no serde): enough for the bench binaries' `--json` mode —
//! objects, arrays, strings, integers and floats, with escaping.
//!
//! ```
//! use lac_bench::json::Json;
//! let point = Json::obj([
//!     ("cores", Json::from(4u64)),
//!     ("speedup", Json::from(3.25)),
//!     ("policy", Json::from("critical-path")),
//! ]);
//! assert_eq!(
//!     point.render(),
//!     r#"{"cores":4,"speedup":3.25,"policy":"critical-path"}"#
//! );
//! ```

use std::fmt::Write as _;

/// A JSON value. Build with the `From` impls and [`Json::obj`] /
/// [`Json::arr`]; serialize with [`Json::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers keep full `u64` precision (no float round-trip).
    UInt(u64),
    Int(i64),
    /// Non-finite floats render as `null` (JSON has no NaN/Inf).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation — what the archived perf
    /// points use so diffs stay readable.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display is valid JSON for finite f64.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        let v = Json::obj([
            ("name", Json::from("chip \"A\"\n")),
            ("cores", Json::from(16u64)),
            ("util", Json::from(0.875)),
            ("nan", Json::from(f64::NAN)),
            ("flags", Json::arr([Json::from(true), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"chip \"A\"\n","cores":16,"util":0.875,"nan":null,"flags":[true,null]}"#
        );
    }

    #[test]
    fn integers_keep_full_precision() {
        let big = u64::MAX;
        assert_eq!(Json::from(big).render(), big.to_string());
        assert_eq!(Json::from(-42i64).render(), "-42");
    }

    #[test]
    fn floats_roundtrip_shortest() {
        assert_eq!(Json::from(0.1).render(), "0.1");
        assert_eq!(Json::from(3.0).render(), "3");
        assert_eq!(Json::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_nests_with_two_spaces() {
        let v = Json::obj([("rows", Json::arr([Json::from(1u64)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"rows\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::arr([]).render_pretty(), "[]\n");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Json::from("\u{1}").render(), "\"\\u0001\"");
    }
}
