//! Arrival-trace file capture and replay.
//!
//! An [`ArrivalTrace`] is a replayable value type, but only within one
//! process — to pin an experiment's arrivals across machines, commits or
//! tools, serialize the trace to JSON with [`trace_to_json`] and read it
//! back with [`trace_from_json`]. The document is self-describing:
//!
//! ```json
//! {
//!   "horizon": 30000,
//!   "streams": 2,
//!   "arrivals": [ { "tick": 412, "tenant": 0, "index": 0 }, … ]
//! }
//! ```
//!
//! Replay goes through [`ArrivalTrace::from_parts`], which re-validates
//! every generator invariant (sortedness, dense per-tenant indices, ticks
//! within the horizon) — a hand-edited or corrupted file surfaces as a
//! typed error, never as a silently different experiment. Round-trip is
//! exact: `trace_from_json(trace_to_json(t)) == t` bit for bit.

use crate::json::Json;
use lac_traffic::{Arrival, ArrivalTrace};

/// Serialize a trace to a self-describing JSON document (pretty-printed,
/// diff-friendly — the same shape the bench binaries archive).
pub fn trace_to_json(trace: &ArrivalTrace) -> String {
    let arrivals = trace.arrivals().iter().map(|a| {
        Json::obj([
            ("tick", Json::from(a.tick)),
            ("tenant", Json::from(a.tenant)),
            ("index", Json::from(a.index)),
        ])
    });
    Json::obj([
        ("horizon", Json::from(trace.horizon())),
        ("streams", Json::from(trace.streams())),
        ("arrivals", Json::arr(arrivals)),
    ])
    .render_pretty()
}

/// Read a field as u64 with a path-carrying error.
fn field_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Json::UInt(v)) => Ok(*v),
        Some(other) => Err(format!(
            "{what}.{key}: expected an unsigned integer, got {other:?}"
        )),
        None => Err(format!("{what}: missing field '{key}'")),
    }
}

/// Parse a captured trace document back into an [`ArrivalTrace`],
/// re-validating every generator invariant via
/// [`ArrivalTrace::from_parts`].
pub fn trace_from_json(text: &str) -> Result<ArrivalTrace, String> {
    let doc = Json::parse(text).map_err(|e| format!("trace document: {e}"))?;
    let horizon = field_u64(&doc, "horizon", "trace")?;
    let streams = field_u64(&doc, "streams", "trace")? as usize;
    let Some(Json::Arr(items)) = doc.get("arrivals") else {
        return Err("trace: missing or non-array field 'arrivals'".into());
    };
    let arrivals = items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let what = format!("arrivals[{i}]");
            Ok(Arrival {
                tick: field_u64(item, "tick", &what)?,
                tenant: field_u64(item, "tenant", &what)? as usize,
                index: field_u64(item, "index", &what)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    ArrivalTrace::from_parts(arrivals, horizon, streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lac_traffic::ArrivalProcess;

    fn demo() -> ArrivalTrace {
        ArrivalTrace::generate(
            23,
            40_000,
            &[
                ArrivalProcess::Poisson { mean_gap: 300.0 },
                ArrivalProcess::OnOff {
                    mean_gap_on: 20.0,
                    mean_burst: 5.0,
                    mean_gap_off: 2_000.0,
                },
                ArrivalProcess::Diurnal {
                    mean_gap: 500.0,
                    period: 10_000,
                    depth: 0.7,
                },
            ],
        )
    }

    #[test]
    fn capture_replay_round_trips_exactly() {
        let trace = demo();
        let text = trace_to_json(&trace);
        let back = trace_from_json(&text).unwrap();
        assert_eq!(back, trace, "capture/replay must be bit-exact");
        // And the re-capture is byte-identical too.
        assert_eq!(trace_to_json(&back), text);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = ArrivalTrace::generate(1, 0, &[]);
        let back = trace_from_json(&trace_to_json(&trace)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn corrupted_documents_are_typed_errors() {
        let trace = demo();
        let good = trace_to_json(&trace);
        // Not JSON at all.
        assert!(trace_from_json("not json").is_err());
        // Structurally valid JSON, wrong shape.
        assert!(trace_from_json("{}").is_err());
        assert!(trace_from_json(r#"{"horizon": 5, "streams": 1}"#).is_err());
        // A tampered arrival that breaks the dense-index invariant.
        let tampered = good.replacen("\"index\": 0", "\"index\": 7", 1);
        assert_ne!(tampered, good);
        let err = trace_from_json(&tampered).unwrap_err();
        assert!(err.contains("dense"), "{err}");
    }
}
