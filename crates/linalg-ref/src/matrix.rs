//! Column-major dense matrix.

use rand::Rng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, column-major, heap-allocated `f64` matrix.
///
/// Column-major storage matches the FLAME/LAPACK convention used throughout
/// the dissertation: element `(i, j)` lives at `data[i + j * rows]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Build from a row-major slice (convenient for literal test fixtures).
    pub fn from_rows(rows: usize, cols: usize, vals: &[f64]) -> Self {
        assert_eq!(vals.len(), rows * cols, "literal length mismatch");
        Self::from_fn(rows, cols, |i, j| vals[i * cols + j])
    }

    /// Uniform random entries in `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    /// A random symmetric positive-definite matrix (`A Aᵀ + n·I`).
    pub fn random_spd(n: usize, rng: &mut impl Rng) -> Self {
        let a = Self::random(n, n, rng);
        let mut c = Self::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[(i, k)] * a[(j, k)];
                }
                c[(i, j)] = s;
            }
            c[(j, j)] += n as f64;
        }
        c
    }

    /// A random lower-triangular matrix with diagonal entries bounded away
    /// from zero (|λᵢᵢ| ≥ 1), suitable as a well-conditioned TRSM operand.
    pub fn random_lower_triangular(n: usize, rng: &mut impl Rng) -> Self {
        let mut l = Self::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                l[(i, j)] = rng.gen_range(-1.0..1.0);
            }
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            l[(j, j)] = sign * rng.gen_range(1.0..2.0);
        }
        l
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A column as a contiguous slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy of row `i`.
    pub fn row_vec(&self, i: usize) -> Vec<f64> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Copy the `rows × cols` block whose top-left corner is `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(
            r0 + rows <= self.rows && c0 + cols <= self.cols,
            "block out of range"
        );
        Matrix::from_fn(rows, cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Overwrite the block at `(r0, c0)` with `b`.
    pub fn set_block(&mut self, r0: usize, c0: usize, b: &Matrix) {
        assert!(
            r0 + b.rows <= self.rows && c0 + b.cols <= self.cols,
            "block out of range"
        );
        for j in 0..b.cols {
            for i in 0..b.rows {
                self[(r0 + i, c0 + j)] = b[(i, j)];
            }
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Zero out the strictly upper triangle (keep lower + diagonal).
    pub fn tril(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if i >= j {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Zero out the strictly lower triangle (keep upper + diagonal).
    pub fn triu(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if i <= j {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Symmetrize from the lower triangle: `out(i,j) = out(j,i) = self(max,min)`.
    pub fn symmetrize_from_lower(&self) -> Matrix {
        assert_eq!(self.rows, self.cols);
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if i >= j {
                self[(i, j)]
            } else {
                self[(j, i)]
            }
        })
    }

    /// Swap rows `i` and `k` in place (used by partial pivoting).
    pub fn swap_rows(&mut self, i: usize, k: usize) {
        if i == k {
            return;
        }
        for j in 0..self.cols {
            let a = self[(i, j)];
            self[(i, j)] = self[(k, j)];
            self[(k, j)] = a;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_diagonal() {
        let i = Matrix::identity(5);
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn column_major_storage() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::random(4, 7, &mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn block_and_set_block() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Matrix::random(6, 6, &mut rng);
        let b = m.block(2, 3, 3, 2);
        assert_eq!(b[(0, 0)], m[(2, 3)]);
        assert_eq!(b[(2, 1)], m[(4, 4)]);
        let mut n = Matrix::zeros(6, 6);
        n.set_block(2, 3, &b);
        assert_eq!(n[(4, 4)], m[(4, 4)]);
        assert_eq!(n[(0, 0)], 0.0);
    }

    #[test]
    fn spd_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::random_spd(8, &mut rng);
        for i in 0..8 {
            for j in 0..8 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = Matrix::from_rows(3, 2, &[1., 2., 3., 4., 5., 6.]);
        m.swap_rows(0, 2);
        assert_eq!(m.row_vec(0), vec![5., 6.]);
        assert_eq!(m.row_vec(2), vec![1., 2.]);
    }

    #[test]
    fn tril_triu_partition() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Matrix::random(5, 5, &mut rng);
        let l = m.tril();
        let u = m.triu();
        for i in 0..5 {
            for j in 0..5 {
                let sum = l[(i, j)] + u[(i, j)];
                let expect = if i == j { 2.0 * m[(i, j)] } else { m[(i, j)] };
                assert!((sum - expect).abs() < 1e-15);
            }
        }
    }
}
