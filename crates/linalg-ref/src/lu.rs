//! LU factorization (§6.1.2): no-pivot and partial-pivoting variants.

use crate::blas1::iamax;
use crate::matrix::Matrix;

/// Result of an LU factorization: `P A = L U`, packed in-place — `factors`
/// holds `U` in the upper triangle and the strictly-lower multipliers of `L`
/// (unit diagonal implied); `pivots[k]` is the row swapped with row `k` at
/// step `k`.
#[derive(Clone, Debug)]
pub struct LuFactors {
    pub factors: Matrix,
    pub pivots: Vec<usize>,
}

impl LuFactors {
    /// Expand the packed factors into explicit `L` (unit lower-triangular,
    /// `m × min(m,n)`) and `U` (`min(m,n) × n`).
    pub fn unpack(&self) -> (Matrix, Matrix) {
        let m = self.factors.rows();
        let n = self.factors.cols();
        let k = m.min(n);
        let mut l = Matrix::zeros(m, k);
        let mut u = Matrix::zeros(k, n);
        for j in 0..k {
            l[(j, j)] = 1.0;
            for i in j + 1..m {
                l[(i, j)] = self.factors[(i, j)];
            }
        }
        for j in 0..n {
            for i in 0..=j.min(k - 1) {
                u[(i, j)] = self.factors[(i, j)];
            }
        }
        (l, u)
    }

    /// Apply the recorded row interchanges to a fresh copy of `a`
    /// (computes `P a`).
    pub fn apply_pivots(&self, a: &Matrix) -> Matrix {
        let mut p = a.clone();
        for (k, &piv) in self.pivots.iter().enumerate() {
            p.swap_rows(k, piv);
        }
        p
    }

    /// Solve `A x = b` using the packed factors (forward + backward
    /// substitution after pivoting `b`). Requires a square factorization.
    #[allow(clippy::needless_range_loop)] // triangular back-substitution indexing
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.factors.rows();
        assert_eq!(self.factors.cols(), n, "solve requires square A");
        assert_eq!(b.len(), n);
        let mut x = b.to_vec();
        for (k, &piv) in self.pivots.iter().enumerate() {
            x.swap(k, piv);
        }
        // Ly = Pb (unit lower)
        for i in 0..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.factors[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Ux = y
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= self.factors[(i, j)] * x[j];
            }
            x[i] = s / self.factors[(i, i)];
        }
        x
    }
}

/// LU without pivoting (fails on zero pivots; numerically fragile — included
/// as the baseline the dissertation argues against).
pub fn lu_nopivot(a: &Matrix) -> Result<LuFactors, String> {
    let (m, n) = (a.rows(), a.cols());
    let mut f = a.clone();
    let kmax = m.min(n);
    for k in 0..kmax {
        let piv = f[(k, k)];
        if piv == 0.0 {
            return Err(format!("zero pivot at step {k}"));
        }
        for i in k + 1..m {
            f[(i, k)] /= piv;
        }
        for j in k + 1..n {
            let ukj = f[(k, j)];
            for i in k + 1..m {
                let v = f[(i, k)] * ukj;
                f[(i, j)] -= v;
            }
        }
    }
    Ok(LuFactors {
        factors: f,
        pivots: (0..kmax).collect(),
    })
}

/// Right-looking LU with partial pivoting — the algorithm of Figure 6.2:
/// per column, (S1) search the pivot, (S2) reciprocal + row swap,
/// (S3) scale the column, (S4) rank-1 update of the trailing matrix.
pub fn lu_partial_pivot(a: &Matrix) -> Result<LuFactors, String> {
    let (m, n) = (a.rows(), a.cols());
    let mut f = a.clone();
    let kmax = m.min(n);
    let mut pivots = Vec::with_capacity(kmax);
    for k in 0..kmax {
        // S1: pivot search in column k, rows k..m
        let col: Vec<f64> = (k..m).map(|i| f[(i, k)]).collect();
        let piv_row = k + iamax(&col);
        let piv = f[(piv_row, k)];
        if piv == 0.0 {
            return Err(format!("singular: zero pivot column {k}"));
        }
        pivots.push(piv_row);
        // S2: interchange rows (full rows, so L multipliers swap too)
        f.swap_rows(k, piv_row);
        // S3: scale by the reciprocal of the pivot
        let recip = 1.0 / f[(k, k)];
        for i in k + 1..m {
            f[(i, k)] *= recip;
        }
        // S4: rank-1 update of the trailing submatrix
        for j in k + 1..n {
            let ukj = f[(k, j)];
            for i in k + 1..m {
                let v = f[(i, k)] * ukj;
                f[(i, j)] -= v;
            }
        }
    }
    Ok(LuFactors { factors: f, pivots })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm;
    use crate::max_abs_diff;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pa_equals_lu_square() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1, 2, 5, 16, 33] {
            let a = Matrix::random(n, n, &mut rng);
            let lu = lu_partial_pivot(&a).unwrap();
            let (l, u) = lu.unpack();
            let pa = lu.apply_pivots(&a);
            let mut prod = Matrix::zeros(n, n);
            gemm(&l, &u, &mut prod);
            assert!(max_abs_diff(&pa, &prod) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn tall_panel_factorization() {
        // The LAC inner kernel factors k·nr × nr panels (Figure 6.2).
        let mut rng = StdRng::seed_from_u64(22);
        let a = Matrix::random(32, 4, &mut rng);
        let lu = lu_partial_pivot(&a).unwrap();
        let (l, u) = lu.unpack();
        let pa = lu.apply_pivots(&a);
        let mut prod = Matrix::zeros(32, 4);
        gemm(&l, &u, &mut prod);
        assert!(max_abs_diff(&pa, &prod) < 1e-12);
    }

    #[test]
    fn multipliers_bounded_by_one() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Matrix::random(20, 20, &mut rng);
        let lu = lu_partial_pivot(&a).unwrap();
        let (l, _) = lu.unpack();
        for j in 0..20 {
            for i in j + 1..20 {
                assert!(
                    l[(i, j)].abs() <= 1.0 + 1e-14,
                    "partial pivoting bounds |l_ij| by 1"
                );
            }
        }
    }

    #[test]
    fn solve_linear_system() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = Matrix::random(12, 12, &mut rng);
        let x_true: Vec<f64> = (0..12).map(|i| (i as f64).sin()).collect();
        let mut b = vec![0.0; 12];
        crate::blas2::gemv(1.0, &a, false, &x_true, 0.0, &mut b);
        let lu = lu_partial_pivot(&a).unwrap();
        let x = lu.solve(&b);
        for (xa, xe) in x.iter().zip(&x_true) {
            assert!((xa - xe).abs() < 1e-8);
        }
    }

    #[test]
    fn nopivot_fails_on_zero_pivot() {
        let a = Matrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert!(lu_nopivot(&a).is_err());
        assert!(lu_partial_pivot(&a).is_ok());
    }

    #[test]
    fn nopivot_matches_pivot_when_diagonally_dominant() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut a = Matrix::random(8, 8, &mut rng);
        for i in 0..8 {
            a[(i, i)] += 10.0; // force no row swaps
        }
        let lu1 = lu_nopivot(&a).unwrap();
        let lu2 = lu_partial_pivot(&a).unwrap();
        assert!(max_abs_diff(&lu1.factors, &lu2.factors) < 1e-12);
        assert!(lu2.pivots.iter().enumerate().all(|(k, &p)| p == k));
    }
}
