//! Householder transformations (§6.1.3, Table 6.1).
//!
//! Both formulations from Table 6.1 are implemented: the *simple* one (norm
//! of the full vector, then scale) and the *efficient* one that reuses the
//! norm of the tail to compute `τ` without a second pass — the version the
//! LAC's extended MAC makes cheap.

use crate::blas1::nrm2;

/// A Householder reflector `H = I - u uᵀ / τ` with `u = [1; u2]`, stored as
/// the tail `u2`, the scalar `τ`, and the produced diagonal value `ρ`.
#[derive(Clone, Debug, PartialEq)]
pub struct HouseholderReflector {
    /// Tail of the reflector vector (first element is an implicit 1).
    pub u2: Vec<f64>,
    /// Scaling factor `τ = uᵀu / 2`.
    pub tau: f64,
    /// The value the reflected vector's head becomes: `ρ = -sign(α₁)‖x‖₂`.
    pub rho: f64,
}

impl HouseholderReflector {
    /// Apply `H` to a vector `x = [χ₁; x₂]` in place.
    pub fn apply(&self, x1: &mut f64, x2: &mut [f64]) {
        assert_eq!(x2.len(), self.u2.len());
        // w = (χ₁ + u2ᵀ x₂) / τ
        let mut w = *x1;
        for (u, x) in self.u2.iter().zip(x2.iter()) {
            w += u * x;
        }
        w /= self.tau;
        *x1 -= w;
        for (u, x) in self.u2.iter().zip(x2.iter_mut()) {
            *x -= w * u;
        }
    }
}

fn sign(x: f64) -> f64 {
    if x >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Compute the Householder reflector zeroing `a21` when applied to
/// `[alpha1; a21]` — the *efficient* computation of Table 6.1 (right column).
///
/// Returns the reflector and overwrites nothing; degenerate inputs
/// (`a21 = 0`) yield `τ = 1/2, u2 = 0` so `H = I - 2·e₁e₁ᵀ/1`… in that case we
/// use the LAPACK convention `H = I` when the vector is already collapsed.
pub fn house(alpha1: f64, a21: &[f64]) -> HouseholderReflector {
    let chi2 = nrm2(a21); // ‖a21‖₂
    if chi2 == 0.0 {
        // Nothing to annihilate: identity reflector (τ = ∞ ⇒ w = 0); encode
        // with a large τ-free path: u2 = 0, τ = f64::INFINITY semantics via 2.
        return HouseholderReflector {
            u2: vec![0.0; a21.len()],
            tau: f64::INFINITY,
            rho: alpha1,
        };
    }
    let alpha = nrm2(&[alpha1, chi2]); // ‖x‖₂
    let rho = -sign(alpha1) * alpha;
    let nu1 = alpha1 - rho;
    let u2: Vec<f64> = a21.iter().map(|v| v / nu1).collect();
    let chi2_scaled = chi2 / nu1.abs(); // = ‖u2‖₂
    let tau = (1.0 + chi2_scaled * chi2_scaled) / 2.0;
    HouseholderReflector { u2, tau, rho }
}

/// The *simple* formulation of Table 6.1 (left column) — two norms and a
/// direct `τ = uᵀu/2`. Used in tests to show both columns agree.
pub fn house_simple(alpha1: f64, a21: &[f64]) -> HouseholderReflector {
    let mut x = Vec::with_capacity(a21.len() + 1);
    x.push(alpha1);
    x.extend_from_slice(a21);
    let norm_x = nrm2(&x);
    if norm_x == 0.0 || nrm2(a21) == 0.0 {
        return HouseholderReflector {
            u2: vec![0.0; a21.len()],
            tau: f64::INFINITY,
            rho: alpha1,
        };
    }
    let rho = -sign(alpha1) * norm_x;
    let nu1 = alpha1 + sign(alpha1) * norm_x;
    let u2: Vec<f64> = a21.iter().map(|v| v / nu1).collect();
    let utu = 1.0 + u2.iter().map(|v| v * v).sum::<f64>();
    HouseholderReflector {
        u2,
        tau: utu / 2.0,
        rho,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflector_annihilates_tail() {
        let mut x1 = 3.0;
        let mut x2 = vec![4.0, 0.0, 0.0];
        let h = house(x1, &x2);
        h.apply(&mut x1, &mut x2);
        assert!((x1.abs() - 5.0).abs() < 1e-12, "head becomes ±‖x‖");
        for v in &x2 {
            assert!(v.abs() < 1e-12);
        }
        assert!((x1 - h.rho).abs() < 1e-12);
    }

    #[test]
    fn simple_and_efficient_agree() {
        let cases: &[(f64, Vec<f64>)] = &[
            (3.0, vec![4.0]),
            (-2.0, vec![1.0, 2.0, 2.0]),
            (0.5, vec![-0.1, 0.7, 0.3, -0.9]),
        ];
        for (a1, a21) in cases {
            let h1 = house(*a1, a21);
            let h2 = house_simple(*a1, a21);
            assert!((h1.rho - h2.rho).abs() < 1e-12);
            assert!((h1.tau - h2.tau).abs() < 1e-12);
            for (u, v) in h1.u2.iter().zip(&h2.u2) {
                assert!((u - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn norm_preserved_on_other_vectors() {
        let h = house(1.0, &[2.0, -1.0, 0.5]);
        let mut y1 = 0.3;
        let mut y2 = vec![0.1, -0.7, 2.0];
        let before = nrm2(&[y1, y2[0], y2[1], y2[2]]);
        h.apply(&mut y1, &mut y2);
        let after = nrm2(&[y1, y2[0], y2[1], y2[2]]);
        assert!((before - after).abs() < 1e-12, "reflections are isometries");
    }

    #[test]
    fn degenerate_zero_tail_is_identity() {
        let h = house(5.0, &[0.0, 0.0]);
        let mut x1 = 5.0;
        let mut x2 = vec![0.0, 0.0];
        h.apply(&mut x1, &mut x2);
        assert_eq!(x1, 5.0);
    }

    #[test]
    fn extreme_magnitudes_do_not_overflow() {
        // The scaled norm path must survive entries near the overflow limit.
        let h = house(1e200, &[1e200]);
        assert!(h.rho.is_finite());
        assert!(h.tau.is_finite());
    }
}
