//! Minimal complex arithmetic for the FFT substrate (no external deps).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in rectangular form.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiply by `-i` (quarter-turn clockwise) — free in radix-4 FFTs.
    pub fn mul_neg_i(self) -> Self {
        Self {
            re: self.im,
            im: -self.re,
        }
    }

    /// Multiply by `i`.
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }

    /// Scale by a real.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Max elementwise |difference| between two complex slices.
pub fn max_cdiff(a: &[Complex], b: &[Complex]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_matches_expansion() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let c = a * b;
        assert_eq!(c, Complex::new(5.0, 5.0));
    }

    #[test]
    fn cis_unit_circle() {
        let c = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((c.re).abs() < 1e-15);
        assert!((c.im - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mul_neg_i_is_rotation() {
        let a = Complex::new(1.0, 2.0);
        let expect = a * Complex::new(0.0, -1.0);
        assert_eq!(a.mul_neg_i(), expect);
        assert_eq!(a.mul_i(), a * Complex::new(0.0, 1.0));
    }
}
