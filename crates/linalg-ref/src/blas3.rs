//! Level-3 BLAS: the operation class the LAC is designed around (Chapter 5).
//!
//! `gemm_blocked` mirrors the three-layer blocking of Figure 3.3 (resident
//! `mc×kc` block of A, `kc×nr` panels of B, `nr×nr` accumulator tiles of C) so
//! tests can check that the LAC's blocking produces exactly the reference
//! result, and benches can use it as the "general-purpose CPU" baseline.

use crate::matrix::Matrix;

/// Which side a triangular/symmetric operand multiplies from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Which triangle of a triangular/symmetric operand is stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Triangle {
    Lower,
    Upper,
}

/// Whether an operand is transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transpose {
    No,
    Yes,
}

/// Cache-blocking parameters for [`gemm_blocked`], named as in the
/// dissertation (`mc × kc` resident A block, `nr` register tile).
#[derive(Clone, Copy, Debug)]
pub struct BlockSizes {
    pub mc: usize,
    pub kc: usize,
    pub nr: usize,
}

impl Default for BlockSizes {
    fn default() -> Self {
        Self {
            mc: 64,
            kc: 64,
            nr: 4,
        }
    }
}

/// Triple-loop reference GEMM: `C := alpha * op(A) op(B) + beta * C`.
pub fn gemm_naive(
    alpha: f64,
    a: &Matrix,
    ta: Transpose,
    b: &Matrix,
    tb: Transpose,
    beta: f64,
    c: &mut Matrix,
) {
    let (m, ka) = match ta {
        Transpose::No => (a.rows(), a.cols()),
        Transpose::Yes => (a.cols(), a.rows()),
    };
    let (kb, n) = match tb {
        Transpose::No => (b.rows(), b.cols()),
        Transpose::Yes => (b.cols(), b.rows()),
    };
    assert_eq!(ka, kb, "inner dimensions must agree");
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), n);
    let at = |i: usize, p: usize| match ta {
        Transpose::No => a[(i, p)],
        Transpose::Yes => a[(p, i)],
    };
    let bt = |p: usize, j: usize| match tb {
        Transpose::No => b[(p, j)],
        Transpose::Yes => b[(j, p)],
    };
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for p in 0..ka {
                s += at(i, p) * bt(p, j);
            }
            c[(i, j)] = alpha * s + beta * c[(i, j)];
        }
    }
}

/// `C += A B` with no transposes — the common case in the dissertation.
pub fn gemm(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    gemm_naive(1.0, a, Transpose::No, b, Transpose::No, 1.0, c);
}

/// Blocked GEMM `C += A B` following the Goto-style hierarchy of Figure 3.3:
/// loop over `kc` panels, then `mc` row blocks of A (the "resident" block),
/// then `nr` column panels of B, with an `nr × nr` accumulator tile.
pub fn gemm_blocked(a: &Matrix, b: &Matrix, c: &mut Matrix, bs: BlockSizes) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k);
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), n);
    let BlockSizes { mc, kc, nr } = bs;
    assert!(mc > 0 && kc > 0 && nr > 0);
    let mut pc = 0;
    while pc < k {
        let kb = kc.min(k - pc);
        let mut ic = 0;
        while ic < m {
            let mb = mc.min(m - ic);
            // A_{i,p}: the block held resident in the PE local stores.
            let mut jc = 0;
            while jc < n {
                let nb = nr.min(n - jc);
                // Inner kernel: mb × nb tile of C updated by rank-kb product,
                // processed in nr-row slabs as the LAC does (Figure 3.3 top).
                let mut ir = 0;
                while ir < mb {
                    let mr = nr.min(mb - ir);
                    // nr × nr accumulator tile (kept "in the accumulators").
                    let mut acc = [[0.0f64; 16]; 16];
                    debug_assert!(mr <= 16 && nb <= 16, "nr tile above supported max");
                    for p in 0..kb {
                        for i in 0..mr {
                            let aval = a[(ic + ir + i, pc + p)];
                            for j in 0..nb {
                                acc[i][j] += aval * b[(pc + p, jc + j)];
                            }
                        }
                    }
                    for j in 0..nb {
                        for i in 0..mr {
                            c[(ic + ir + i, jc + j)] += acc[i][j];
                        }
                    }
                    ir += mr;
                }
                jc += nb;
            }
            ic += mb;
        }
        pc += kb;
    }
}

/// SYMM: `C += A B` (Side::Left) or `C += B A` (Side::Right) where `A` is
/// symmetric and only the `tri` triangle of `A` is referenced.
pub fn symm(side: Side, tri: Triangle, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.rows(), a.cols());
    let sym = |i: usize, j: usize| -> f64 {
        let (lo, hi) = if i >= j { (i, j) } else { (j, i) };
        match tri {
            Triangle::Lower => a[(lo, hi)],
            Triangle::Upper => a[(hi, lo)],
        }
    };
    match side {
        Side::Left => {
            let m = a.rows();
            assert_eq!(b.rows(), m);
            assert_eq!(c.rows(), m);
            assert_eq!(c.cols(), b.cols());
            for j in 0..b.cols() {
                for i in 0..m {
                    let mut s = 0.0;
                    for p in 0..m {
                        s += sym(i, p) * b[(p, j)];
                    }
                    c[(i, j)] += s;
                }
            }
        }
        Side::Right => {
            let n = a.rows();
            assert_eq!(b.cols(), n);
            assert_eq!(c.cols(), n);
            assert_eq!(c.rows(), b.rows());
            for j in 0..n {
                for i in 0..b.rows() {
                    let mut s = 0.0;
                    for p in 0..n {
                        s += b[(i, p)] * sym(p, j);
                    }
                    c[(i, j)] += s;
                }
            }
        }
    }
}

/// SYRK: `C := C + A Aᵀ`, updating only the `tri` triangle of the symmetric
/// result (§5.2). The untouched triangle of `C` is left as-is.
pub fn syrk(tri: Triangle, a: &Matrix, c: &mut Matrix) {
    let n = a.rows();
    assert_eq!(c.rows(), n);
    assert_eq!(c.cols(), n);
    for j in 0..n {
        let range: Box<dyn Iterator<Item = usize>> = match tri {
            Triangle::Lower => Box::new(j..n),
            Triangle::Upper => Box::new(0..=j),
        };
        for i in range {
            let mut s = 0.0;
            for p in 0..a.cols() {
                s += a[(i, p)] * a[(j, p)];
            }
            c[(i, j)] += s;
        }
    }
}

/// SYR2K: `C := C + A Bᵀ + B Aᵀ`, updating only the `tri` triangle (§5.1).
pub fn syr2k(tri: Triangle, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let n = a.rows();
    assert_eq!(b.rows(), n);
    assert_eq!(a.cols(), b.cols());
    assert_eq!(c.rows(), n);
    assert_eq!(c.cols(), n);
    for j in 0..n {
        let range: Box<dyn Iterator<Item = usize>> = match tri {
            Triangle::Lower => Box::new(j..n),
            Triangle::Upper => Box::new(0..=j),
        };
        for i in range {
            let mut s = 0.0;
            for p in 0..a.cols() {
                s += a[(i, p)] * b[(j, p)] + b[(i, p)] * a[(j, p)];
            }
            c[(i, j)] += s;
        }
    }
}

/// TRMM: `B := L B` with `L` lower-triangular (Side::Left, Triangle::Lower),
/// or the corresponding variants. Only `tri` of `t` is referenced.
pub fn trmm(side: Side, tri: Triangle, t: &Matrix, b: &mut Matrix) {
    let n = t.rows();
    assert_eq!(t.cols(), n);
    let tv = |i: usize, j: usize| -> f64 {
        match tri {
            Triangle::Lower if i >= j => t[(i, j)],
            Triangle::Upper if i <= j => t[(i, j)],
            _ => 0.0,
        }
    };
    match side {
        Side::Left => {
            assert_eq!(b.rows(), n);
            for j in 0..b.cols() {
                // Order so we never read an already-overwritten element.
                let rows: Box<dyn Iterator<Item = usize>> = match tri {
                    Triangle::Lower => Box::new((0..n).rev()),
                    Triangle::Upper => Box::new(0..n),
                };
                for i in rows {
                    let mut s = 0.0;
                    for p in 0..n {
                        s += tv(i, p) * b[(p, j)];
                    }
                    b[(i, j)] = s;
                }
            }
        }
        Side::Right => {
            assert_eq!(b.cols(), n);
            for i in 0..b.rows() {
                let cols: Box<dyn Iterator<Item = usize>> = match tri {
                    Triangle::Lower => Box::new(0..n),
                    Triangle::Upper => Box::new((0..n).rev()),
                };
                for j in cols {
                    let mut s = 0.0;
                    for p in 0..n {
                        s += b[(i, p)] * tv(p, j);
                    }
                    b[(i, j)] = s;
                }
            }
        }
    }
}

/// TRSM: solve `L X = B` (Side::Left, Triangle::Lower — the variant mapped in
/// §5.3) or the other three variants, overwriting `B` with `X`.
pub fn trsm(side: Side, tri: Triangle, t: &Matrix, b: &mut Matrix) {
    let n = t.rows();
    assert_eq!(t.cols(), n);
    match (side, tri) {
        (Side::Left, Triangle::Lower) => {
            assert_eq!(b.rows(), n);
            for j in 0..b.cols() {
                for i in 0..n {
                    let mut s = b[(i, j)];
                    for p in 0..i {
                        s -= t[(i, p)] * b[(p, j)];
                    }
                    b[(i, j)] = s / t[(i, i)];
                }
            }
        }
        (Side::Left, Triangle::Upper) => {
            assert_eq!(b.rows(), n);
            for j in 0..b.cols() {
                for i in (0..n).rev() {
                    let mut s = b[(i, j)];
                    for p in i + 1..n {
                        s -= t[(i, p)] * b[(p, j)];
                    }
                    b[(i, j)] = s / t[(i, i)];
                }
            }
        }
        (Side::Right, Triangle::Lower) => {
            assert_eq!(b.cols(), n);
            for i in 0..b.rows() {
                for j in (0..n).rev() {
                    let mut s = b[(i, j)];
                    for p in j + 1..n {
                        s -= b[(i, p)] * t[(p, j)];
                    }
                    b[(i, j)] = s / t[(j, j)];
                }
            }
        }
        (Side::Right, Triangle::Upper) => {
            assert_eq!(b.cols(), n);
            for i in 0..b.rows() {
                for j in 0..n {
                    let mut s = b[(i, j)];
                    for p in 0..j {
                        s -= b[(i, p)] * t[(p, j)];
                    }
                    b[(i, j)] = s / t[(j, j)];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn gemm_identity_left() {
        let mut r = rng();
        let b = Matrix::random(4, 5, &mut r);
        let mut c = Matrix::zeros(4, 5);
        gemm(&Matrix::identity(4), &b, &mut c);
        assert!(max_abs_diff(&c, &b) < 1e-15);
    }

    #[test]
    fn gemm_naive_transposes() {
        let mut r = rng();
        let a = Matrix::random(3, 4, &mut r);
        let b = Matrix::random(5, 4, &mut r);
        // C = Aᵀ? No: C = A * Bᵀ is 3x5.
        let mut c1 = Matrix::zeros(3, 5);
        gemm_naive(1.0, &a, Transpose::No, &b, Transpose::Yes, 0.0, &mut c1);
        let bt = b.transpose();
        let mut c2 = Matrix::zeros(3, 5);
        gemm(&a, &bt, &mut c2);
        assert!(max_abs_diff(&c1, &c2) < 1e-13);
    }

    #[test]
    fn gemm_alpha_beta() {
        let mut r = rng();
        let a = Matrix::random(3, 3, &mut r);
        let b = Matrix::random(3, 3, &mut r);
        let c0 = Matrix::random(3, 3, &mut r);
        let mut c = c0.clone();
        gemm_naive(2.0, &a, Transpose::No, &b, Transpose::No, 3.0, &mut c);
        let mut ab = Matrix::zeros(3, 3);
        gemm(&a, &b, &mut ab);
        for j in 0..3 {
            for i in 0..3 {
                let expect = 2.0 * ab[(i, j)] + 3.0 * c0[(i, j)];
                assert!((c[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn blocked_matches_naive_various_shapes() {
        let mut r = rng();
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 4, 4),
            (5, 7, 3),
            (16, 16, 16),
            (33, 17, 29),
            (64, 1, 64),
        ] {
            let a = Matrix::random(m, k, &mut r);
            let b = Matrix::random(k, n, &mut r);
            let mut c1 = Matrix::random(m, n, &mut r);
            let mut c2 = c1.clone();
            gemm(&a, &b, &mut c1);
            gemm_blocked(
                &a,
                &b,
                &mut c2,
                BlockSizes {
                    mc: 8,
                    kc: 8,
                    nr: 4,
                },
            );
            assert!(max_abs_diff(&c1, &c2) < 1e-12, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn blocked_various_block_sizes() {
        let mut r = rng();
        let a = Matrix::random(20, 20, &mut r);
        let b = Matrix::random(20, 20, &mut r);
        let mut cref = Matrix::zeros(20, 20);
        gemm(&a, &b, &mut cref);
        for &(mc, kc, nr) in &[(4, 4, 4), (8, 16, 2), (20, 20, 8), (3, 5, 1), (64, 64, 16)] {
            let mut c = Matrix::zeros(20, 20);
            gemm_blocked(&a, &b, &mut c, BlockSizes { mc, kc, nr });
            assert!(max_abs_diff(&c, &cref) < 1e-12, "blocks ({mc},{kc},{nr})");
        }
    }

    #[test]
    fn syrk_matches_gemm_with_transpose() {
        let mut r = rng();
        let a = Matrix::random(6, 4, &mut r);
        let mut c = Matrix::zeros(6, 6);
        syrk(Triangle::Lower, &a, &mut c);
        let mut full = Matrix::zeros(6, 6);
        gemm_naive(1.0, &a, Transpose::No, &a, Transpose::Yes, 0.0, &mut full);
        assert!(max_abs_diff(&c.tril(), &full.tril()) < 1e-13);
        // strictly upper part untouched
        for j in 1..6 {
            for i in 0..j {
                assert_eq!(c[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn syrk_upper_variant() {
        let mut r = rng();
        let a = Matrix::random(5, 3, &mut r);
        let mut c = Matrix::zeros(5, 5);
        syrk(Triangle::Upper, &a, &mut c);
        let mut full = Matrix::zeros(5, 5);
        gemm_naive(1.0, &a, Transpose::No, &a, Transpose::Yes, 0.0, &mut full);
        assert!(max_abs_diff(&c.triu(), &full.triu()) < 1e-13);
    }

    #[test]
    fn syr2k_matches_definition() {
        let mut r = rng();
        let a = Matrix::random(5, 3, &mut r);
        let b = Matrix::random(5, 3, &mut r);
        let mut c = Matrix::zeros(5, 5);
        syr2k(Triangle::Lower, &a, &b, &mut c);
        let mut full = Matrix::zeros(5, 5);
        gemm_naive(1.0, &a, Transpose::No, &b, Transpose::Yes, 1.0, &mut full);
        gemm_naive(1.0, &b, Transpose::No, &a, Transpose::Yes, 1.0, &mut full);
        assert!(max_abs_diff(&c.tril(), &full.tril()) < 1e-13);
    }

    #[test]
    fn symm_left_matches_gemm_on_symmetrized() {
        let mut r = rng();
        let araw = Matrix::random(5, 5, &mut r);
        let asym = araw.tril().symmetrize_from_lower();
        let b = Matrix::random(5, 4, &mut r);
        let mut c1 = Matrix::zeros(5, 4);
        symm(Side::Left, Triangle::Lower, &araw, &b, &mut c1);
        let mut c2 = Matrix::zeros(5, 4);
        gemm(&asym, &b, &mut c2);
        assert!(max_abs_diff(&c1, &c2) < 1e-13);
    }

    #[test]
    fn symm_right_matches() {
        let mut r = rng();
        let araw = Matrix::random(4, 4, &mut r);
        let asym = araw.tril().symmetrize_from_lower();
        let b = Matrix::random(3, 4, &mut r);
        let mut c1 = Matrix::zeros(3, 4);
        symm(Side::Right, Triangle::Lower, &araw, &b, &mut c1);
        let mut c2 = Matrix::zeros(3, 4);
        gemm(&b, &asym, &mut c2);
        assert!(max_abs_diff(&c1, &c2) < 1e-13);
    }

    #[test]
    fn trmm_left_lower_matches_gemm() {
        let mut r = rng();
        let l = Matrix::random_lower_triangular(5, &mut r);
        let b0 = Matrix::random(5, 3, &mut r);
        let mut b = b0.clone();
        trmm(Side::Left, Triangle::Lower, &l, &mut b);
        let mut expect = Matrix::zeros(5, 3);
        gemm(&l, &b0, &mut expect);
        assert!(max_abs_diff(&b, &expect) < 1e-13);
    }

    #[test]
    fn trmm_right_upper_matches_gemm() {
        let mut r = rng();
        let u = Matrix::random_lower_triangular(4, &mut r).transpose();
        let b0 = Matrix::random(3, 4, &mut r);
        let mut b = b0.clone();
        trmm(Side::Right, Triangle::Upper, &u, &mut b);
        let mut expect = Matrix::zeros(3, 4);
        gemm(&b0, &u, &mut expect);
        assert!(max_abs_diff(&b, &expect) < 1e-13);
    }

    #[test]
    fn trsm_all_variants_invert_trmm() {
        let mut r = rng();
        for &side in &[Side::Left, Side::Right] {
            for &tri in &[Triangle::Lower, Triangle::Upper] {
                let t = match tri {
                    Triangle::Lower => Matrix::random_lower_triangular(5, &mut r),
                    Triangle::Upper => Matrix::random_lower_triangular(5, &mut r).transpose(),
                };
                let x0 = match side {
                    Side::Left => Matrix::random(5, 3, &mut r),
                    Side::Right => Matrix::random(3, 5, &mut r),
                };
                let mut b = x0.clone();
                trmm(side, tri, &t, &mut b); // B = op(T, X)
                trsm(side, tri, &t, &mut b); // recover X
                assert!(max_abs_diff(&b, &x0) < 1e-9, "side {side:?} tri {tri:?}");
            }
        }
    }

    #[test]
    fn trsm_left_lower_explicit() {
        // L = [2 0; 1 4], B = L * [1; 1] = [2; 5]
        let l = Matrix::from_rows(2, 2, &[2.0, 0.0, 1.0, 4.0]);
        let mut b = Matrix::from_rows(2, 1, &[2.0, 5.0]);
        trsm(Side::Left, Triangle::Lower, &l, &mut b);
        assert!((b[(0, 0)] - 1.0).abs() < 1e-15);
        assert!((b[(1, 0)] - 1.0).abs() < 1e-15);
    }
}
