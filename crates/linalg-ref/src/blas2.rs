//! Level-2 BLAS: matrix-vector operations used by the factorization kernels.

use crate::matrix::Matrix;

/// `y := alpha * op(A) x + beta * y` with `op` = identity (`trans=false`) or
/// transpose (`trans=true`).
pub fn gemv(alpha: f64, a: &Matrix, trans: bool, x: &[f64], beta: f64, y: &mut [f64]) {
    let (m, n) = (a.rows(), a.cols());
    if trans {
        assert_eq!(x.len(), m);
        assert_eq!(y.len(), n);
        for j in 0..n {
            let mut s = 0.0;
            for i in 0..m {
                s += a[(i, j)] * x[i];
            }
            y[j] = alpha * s + beta * y[j];
        }
    } else {
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), m);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for j in 0..n {
                s += a[(i, j)] * x[j];
            }
            *yi = alpha * s + beta * *yi;
        }
    }
}

/// Rank-1 update `A += alpha * x yᵀ` — the LAC's fundamental operation
/// (Figure 3.2 of the dissertation).
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    assert_eq!(x.len(), a.rows());
    assert_eq!(y.len(), a.cols());
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            a[(i, j)] += alpha * x[i] * y[j];
        }
    }
}

/// Triangular solve `L x = b` (forward substitution, lower, non-unit
/// diagonal). Overwrites `b` with the solution.
pub fn trsv(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(l.cols(), n);
    assert_eq!(b.len(), n);
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * b[j];
        }
        b[i] = s / l[(i, i)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gemv_identity() {
        let a = Matrix::identity(3);
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        gemv(1.0, &a, false, &x, 0.0, &mut y);
        assert_eq!(y, x.to_vec());
    }

    #[test]
    fn gemv_transpose() {
        let a = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let x = [1.0, 1.0];
        let mut y = vec![0.0; 3];
        gemv(1.0, &a, true, &x, 0.0, &mut y);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(2, 2);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0], &mut a);
        assert_eq!(a[(0, 0)], 6.0);
        assert_eq!(a[(1, 1)], 16.0);
    }

    #[test]
    fn trsv_solves() {
        let mut rng = StdRng::seed_from_u64(7);
        let l = Matrix::random_lower_triangular(6, &mut rng);
        let x_true: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let mut b = vec![0.0; 6];
        gemv(1.0, &l, false, &x_true, 0.0, &mut b);
        trsv(&l, &mut b);
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-10);
        }
    }
}
