//! Reference dense linear algebra substrate.
//!
//! This crate provides straightforward, obviously-correct implementations of
//! the operations the Linear Algebra Core (LAC) accelerates: level-1/2/3 BLAS,
//! the matrix factorizations of Chapter 6 (Cholesky, LU with partial
//! pivoting, Householder QR), and radix-2/4 FFTs.  It plays two roles:
//!
//! 1. **Oracle** — every microprogram executed on the cycle-accurate
//!    simulator in `lac-sim` is functionally verified against these routines.
//! 2. **Baseline** — the "general-purpose processor" comparator in the
//!    benchmark harness: a blocked, cache-aware GEMM in the style the
//!    dissertation attributes to Goto/van de Geijn \[52\].
//!
//! Matrices are column-major (FLAME/BLAS convention). Scalars are `f64`
//! throughout; the simulator's single-precision mode rounds through `f32`.

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod chol;
pub mod complex;
pub mod fft;
pub mod householder;
pub mod lu;
pub mod matrix;
pub mod qr;

pub use blas1::{asum, axpy, dot, iamax, nrm2, nrm2_naive, nrm2_one_pass, scal};
pub use blas2::{gemv, ger, trsv};
pub use blas3::{
    gemm, gemm_blocked, gemm_naive, symm, syr2k, syrk, trmm, trsm, BlockSizes, Side, Transpose,
    Triangle,
};
pub use chol::{cholesky, cholesky_blocked};
pub use complex::Complex;
pub use fft::{dft_naive, fft2d, fft_radix2, fft_radix4, ifft_radix2};
pub use householder::{house, HouseholderReflector};
pub use lu::{lu_nopivot, lu_partial_pivot, LuFactors};
pub use matrix::Matrix;
pub use qr::{qr_householder, QrFactors};

/// Maximum absolute elementwise difference between two equally-sized matrices.
///
/// Used pervasively by tests to compare simulator output against reference
/// results.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    let mut m = 0.0f64;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            m = m.max((a[(i, j)] - b[(i, j)]).abs());
        }
    }
    m
}

/// Relative Frobenius-norm error `||a - b||_F / max(1, ||b||_F)`.
pub fn rel_fro_error(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for j in 0..a.cols() {
        for i in 0..a.rows() {
            let d = a[(i, j)] - b[(i, j)];
            num += d * d;
            den += b[(i, j)] * b[(i, j)];
        }
    }
    num.sqrt() / den.sqrt().max(1.0)
}
