//! FFT substrate (Chapter 6.2 / Appendix B).
//!
//! Provides the naive DFT oracle, an iterative radix-2 FFT, a DIT radix-4
//! FFT (the butterfly structure the LAC's PEs execute), and a 2D FFT built
//! from row/column passes — the decomposition the dissertation uses to run
//! `N×N` 2D and `N²` 1D transforms through the 64-point core kernel.

use crate::complex::Complex;
use std::f64::consts::PI;

/// O(n²) reference DFT: `X[k] = Σ_j x[j] e^{-2πi jk / n}`.
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (j, v) in x.iter().enumerate() {
            let ang = -2.0 * PI * (j as f64) * (k as f64) / (n as f64);
            acc += *v * Complex::cis(ang);
        }
        *o = acc;
    }
    out
}

/// In-place iterative radix-2 DIT FFT. `x.len()` must be a power of two.
pub fn fft_radix2(x: &mut [Complex]) {
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT needs a power-of-two length"
    );
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = x[start + k + len / 2] * w;
                x[start + k] = u + v;
                x[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Inverse radix-2 FFT (normalized by `1/n`).
pub fn ifft_radix2(x: &mut [Complex]) {
    for v in x.iter_mut() {
        *v = v.conj();
    }
    fft_radix2(x);
    let n = x.len() as f64;
    for v in x.iter_mut() {
        *v = v.conj().scale(1.0 / n);
    }
}

/// One radix-4 DIT butterfly on four inputs already multiplied by their
/// twiddles: returns `(a + b + c + d, a - ib - c + id, a - b + c - d,
/// a + ib - c - id)` — the DAG of Figure B.1.
#[inline]
pub fn radix4_butterfly(a: Complex, b: Complex, c: Complex, d: Complex) -> [Complex; 4] {
    let t0 = a + c;
    let t1 = a - c;
    let t2 = b + d;
    let t3 = (b - d).mul_neg_i(); // -i (b - d)
    [t0 + t2, t1 + t3, t0 - t2, t1 - t3]
}

fn digit_reverse_base4(i: usize, digits: u32) -> usize {
    let mut v = i;
    let mut r = 0;
    for _ in 0..digits {
        r = (r << 2) | (v & 3);
        v >>= 2;
    }
    r
}

/// In-place radix-4 DIT FFT. Length must be a power of 4.
pub fn fft_radix4(x: &mut [Complex]) {
    let n = x.len();
    assert!(
        n.is_power_of_two() && n.trailing_zeros().is_multiple_of(2),
        "radix-4 FFT needs 4^k length"
    );
    let digits = n.trailing_zeros() / 2;
    // base-4 digit-reversal permutation
    for i in 0..n {
        let j = digit_reverse_base4(i, digits);
        if j > i {
            x.swap(i, j);
        }
    }
    let mut len = 4;
    while len <= n {
        let quarter = len / 4;
        for start in (0..n).step_by(len) {
            for k in 0..quarter {
                let w1 = Complex::cis(-2.0 * PI * k as f64 / len as f64);
                let w2 = Complex::cis(-2.0 * PI * (2 * k) as f64 / len as f64);
                let w3 = Complex::cis(-2.0 * PI * (3 * k) as f64 / len as f64);
                let a = x[start + k];
                let b = x[start + k + quarter] * w1;
                let c = x[start + k + 2 * quarter] * w2;
                let d = x[start + k + 3 * quarter] * w3;
                let y = radix4_butterfly(a, b, c, d);
                x[start + k] = y[0];
                x[start + k + quarter] = y[1];
                x[start + k + 2 * quarter] = y[2];
                x[start + k + 3 * quarter] = y[3];
            }
        }
        len <<= 2;
    }
}

/// 2D FFT of an `rows × cols` row-major grid: FFT every row, then every
/// column (the scheme of Figure B.4 right).
pub fn fft2d(data: &mut [Complex], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols);
    // rows
    for r in 0..rows {
        fft_radix2(&mut data[r * cols..(r + 1) * cols]);
    }
    // columns (gather/scatter through a scratch vector)
    let mut col = vec![Complex::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        fft_radix2(&mut col);
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
}

/// Number of real FMA-equivalent floating point operations the dissertation
/// counts for an n-point complex FFT: `5 n log2 n` real ops.
pub fn fft_flops(n: usize) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::max_cdiff;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn radix2_matches_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = random_signal(n, n as u64);
            let mut y = x.clone();
            fft_radix2(&mut y);
            let z = dft_naive(&x);
            assert!(max_cdiff(&y, &z) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn radix4_matches_dft() {
        for n in [4usize, 16, 64, 256] {
            let x = random_signal(n, 100 + n as u64);
            let mut y = x.clone();
            fft_radix4(&mut y);
            let z = dft_naive(&x);
            assert!(max_cdiff(&y, &z) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn radix4_matches_radix2() {
        let x = random_signal(1024, 9);
        let mut a = x.clone();
        let mut b = x;
        fft_radix2(&mut a);
        fft_radix4(&mut b);
        assert!(max_cdiff(&a, &b) < 1e-8);
    }

    #[test]
    fn ifft_roundtrip() {
        let x = random_signal(256, 17);
        let mut y = x.clone();
        fft_radix2(&mut y);
        ifft_radix2(&mut y);
        assert!(max_cdiff(&x, &y) < 1e-10);
    }

    #[test]
    fn butterfly_is_4point_dft() {
        let x = random_signal(4, 23);
        let y = radix4_butterfly(x[0], x[1], x[2], x[3]);
        let z = dft_naive(&x);
        assert!(max_cdiff(&y, &z) < 1e-12);
    }

    #[test]
    fn fft2d_matches_naive_2d() {
        let rows = 8;
        let cols = 16;
        let x = random_signal(rows * cols, 31);
        let mut y = x.clone();
        fft2d(&mut y, rows, cols);
        // naive 2D: DFT rows then DFT cols
        let mut z = x;
        for r in 0..rows {
            let row = dft_naive(&z[r * cols..(r + 1) * cols]);
            z[r * cols..(r + 1) * cols].copy_from_slice(&row);
        }
        for c in 0..cols {
            let col: Vec<Complex> = (0..rows).map(|r| z[r * cols + c]).collect();
            let colf = dft_naive(&col);
            for r in 0..rows {
                z[r * cols + c] = colf[r];
            }
        }
        assert!(max_cdiff(&y, &z) < 1e-8);
    }

    #[test]
    fn impulse_transforms_to_ones() {
        let mut x = vec![Complex::ZERO; 64];
        x[0] = Complex::ONE;
        fft_radix4(&mut x);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }
}
