//! Householder QR factorization (§6.1.3).

use crate::householder::{house, HouseholderReflector};
use crate::matrix::Matrix;

/// Result of a Householder QR factorization of an `m × n` matrix (`m ≥ n`).
#[derive(Clone, Debug)]
pub struct QrFactors {
    /// Upper-triangular `R` (`n × n`).
    pub r: Matrix,
    /// The reflectors, one per column.
    pub reflectors: Vec<HouseholderReflector>,
    m: usize,
}

impl QrFactors {
    /// Reconstruct the thin `Q` (`m × n`) explicitly by applying the
    /// reflectors to the identity columns in reverse order.
    pub fn q_thin(&self) -> Matrix {
        let m = self.m;
        let n = self.r.cols();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            // start from e_j, apply H_{n-1} ... H_0
            let mut v = vec![0.0; m];
            v[j] = 1.0;
            for (k, h) in self.reflectors.iter().enumerate().rev() {
                let (head, tail) = v[k..].split_at_mut(1);
                h.apply(&mut head[0], tail);
            }
            for i in 0..m {
                q[(i, j)] = v[i];
            }
        }
        q
    }

    /// Apply `Qᵀ` to a vector (useful for least squares: solve `R x = Qᵀ b`).
    pub fn qt_apply(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.m);
        let mut v = b.to_vec();
        for (k, h) in self.reflectors.iter().enumerate() {
            let (head, tail) = v[k..].split_at_mut(1);
            h.apply(&mut head[0], tail);
        }
        v
    }

    /// Solve the least-squares problem `min ‖A x - b‖₂` via `R x = (Qᵀb)₁..n`.
    #[allow(clippy::needless_range_loop)] // triangular back-substitution indexing
    pub fn solve_ls(&self, b: &[f64]) -> Vec<f64> {
        let n = self.r.cols();
        let qtb = self.qt_apply(b);
        let mut x = qtb[..n].to_vec();
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= self.r[(i, j)] * x[j];
            }
            x[i] = s / self.r[(i, i)];
        }
        x
    }
}

/// Unblocked Householder QR: for each column, compute the Householder vector
/// (Table 6.1's efficient form) and update the trailing matrix
/// `A22 := A22 - u (wᵀ)` as in §6.1.3.
pub fn qr_householder(a: &Matrix) -> QrFactors {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "QR here requires m >= n");
    let mut work = a.clone();
    let mut reflectors = Vec::with_capacity(n);
    for k in 0..n {
        let alpha1 = work[(k, k)];
        let a21: Vec<f64> = (k + 1..m).map(|i| work[(i, k)]).collect();
        let h = house(alpha1, &a21);
        work[(k, k)] = h.rho;
        for i in k + 1..m {
            work[(i, k)] = 0.0;
        }
        // Apply H to the trailing columns.
        for j in k + 1..n {
            let mut head = work[(k, j)];
            let mut tail: Vec<f64> = (k + 1..m).map(|i| work[(i, j)]).collect();
            h.apply(&mut head, &mut tail);
            work[(k, j)] = head;
            for (off, v) in tail.iter().enumerate() {
                work[(k + 1 + off, j)] = *v;
            }
        }
        reflectors.push(h);
    }
    let r = work.block(0, 0, n, n).triu();
    QrFactors { r, reflectors, m }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm;
    use crate::max_abs_diff;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn a_equals_qr() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(m, n) in &[(4, 4), (8, 4), (16, 12), (33, 7)] {
            let a = Matrix::random(m, n, &mut rng);
            let qr = qr_householder(&a);
            let q = qr.q_thin();
            let mut prod = Matrix::zeros(m, n);
            gemm(&q, &qr.r, &mut prod);
            assert!(max_abs_diff(&a, &prod) < 1e-10, "({m},{n})");
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = Matrix::random(10, 6, &mut rng);
        let qr = qr_householder(&a);
        let q = qr.q_thin();
        for j1 in 0..6 {
            for j2 in 0..6 {
                let dot: f64 = (0..10).map(|i| q[(i, j1)] * q[(i, j2)]).sum();
                let expect = if j1 == j2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn r_is_upper_triangular_with_negative_sign_convention() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = Matrix::random(6, 6, &mut rng);
        let qr = qr_householder(&a);
        for j in 0..6 {
            for i in j + 1..6 {
                assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        let mut rng = StdRng::seed_from_u64(34);
        let a = Matrix::random(12, 5, &mut rng);
        let x_true: Vec<f64> = (0..5).map(|i| i as f64 + 0.5).collect();
        let mut b = vec![0.0; 12];
        crate::blas2::gemv(1.0, &a, false, &x_true, 0.0, &mut b);
        let qr = qr_householder(&a);
        let x = qr.solve_ls(&b);
        for (xa, xe) in x.iter().zip(&x_true) {
            assert!((xa - xe).abs() < 1e-9);
        }
    }
}
