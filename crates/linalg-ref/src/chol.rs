//! Cholesky factorization (§6.1.1): `A = L Lᵀ` for symmetric positive
//! definite `A`, unblocked and blocked (right-looking) variants.

use crate::blas3::{trsm, Side, Triangle};
use crate::matrix::Matrix;

/// Unblocked right-looking Cholesky. Returns the lower-triangular factor
/// (strictly upper part zeroed). Errors if a non-positive pivot appears.
pub fn cholesky(a: &Matrix) -> Result<Matrix, String> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "Cholesky needs a square matrix");
    let mut l = a.clone();
    for k in 0..n {
        let d = l[(k, k)];
        if d <= 0.0 || !d.is_finite() {
            return Err(format!("non-positive pivot {d} at index {k}"));
        }
        let s = d.sqrt();
        l[(k, k)] = s;
        for i in k + 1..n {
            l[(i, k)] /= s;
        }
        for j in k + 1..n {
            for i in j..n {
                let v = l[(i, k)] * l[(j, k)];
                l[(i, j)] -= v;
            }
        }
    }
    Ok(l.tril())
}

/// Blocked right-looking Cholesky with block size `nb`: exactly the
/// Chol/TRSM/SYRK decomposition the dissertation maps onto the LAP
/// (Figure 6.x "algorithm-by-blocks").
pub fn cholesky_blocked(a: &Matrix, nb: usize) -> Result<Matrix, String> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert!(nb > 0);
    let mut l = a.clone();
    let mut k = 0;
    while k < n {
        let b = nb.min(n - k);
        // A11 := Chol(A11)
        let a11 = l.block(k, k, b, b);
        let l11 = cholesky(&a11)?;
        l.set_block(k, k, &l11);
        if k + b < n {
            let rest = n - k - b;
            // A21 := A21 * L11^{-T}  (solve X L11ᵀ = A21)
            let mut a21 = l.block(k + b, k, rest, b);
            let l11t = l11.transpose();
            trsm(Side::Right, Triangle::Upper, &l11t, &mut a21);
            l.set_block(k + b, k, &a21);
            // A22 := A22 - A21 A21ᵀ (lower triangle only)
            let mut a22 = l.block(k + b, k + b, rest, rest);
            let neg = Matrix::from_fn(rest, b, |i, j| -a21[(i, j)]);
            // C += (-A21) A21ᵀ  == C -= A21 A21ᵀ restricted to lower: use syr-like
            let mut delta = Matrix::zeros(rest, rest);
            for j in 0..rest {
                for i in j..rest {
                    let mut s = 0.0;
                    for p in 0..b {
                        s += neg[(i, p)] * a21[(j, p)];
                    }
                    delta[(i, j)] = s;
                }
            }
            for j in 0..rest {
                for i in j..rest {
                    a22[(i, j)] += delta[(i, j)];
                }
            }
            l.set_block(k + b, k + b, &a22);
        }
        k += b;
    }
    Ok(l.tril())
}

/// Verification helper: `||A - L Lᵀ||_max` over the lower triangle.
pub fn cholesky_residual(a: &Matrix, l: &Matrix) -> f64 {
    let n = a.rows();
    let mut m = 0.0f64;
    for j in 0..n {
        for i in j..n {
            let mut s = 0.0;
            for p in 0..=j.min(i) {
                s += l[(i, p)] * l[(j, p)];
            }
            m = m.max((a[(i, j)] - s).abs());
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn factor_small_known() {
        // A = [[4, 2], [2, 5]] => L = [[2, 0], [1, 2]]
        let a = Matrix::from_rows(2, 2, &[4.0, 2.0, 2.0, 5.0]);
        let l = cholesky(&a).unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-15);
        assert!((l[(1, 1)] - 2.0).abs() < 1e-15);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn residual_small_random() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1, 2, 4, 8, 16, 32] {
            let a = Matrix::random_spd(n, &mut rng);
            let l = cholesky(&a).unwrap();
            assert!(cholesky_residual(&a, &l) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Matrix::random_spd(24, &mut rng);
        let l1 = cholesky(&a).unwrap();
        for nb in [1, 3, 4, 8, 24, 100] {
            let l2 = cholesky_blocked(&a, nb).unwrap();
            assert!(crate::max_abs_diff(&l1, &l2) < 1e-9, "nb={nb}");
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }
}
