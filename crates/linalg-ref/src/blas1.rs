//! Level-1 BLAS: vector-vector operations.
//!
//! The vector 2-norm gets three implementations because Chapter 6 / Appendix A
//! of the dissertation is precisely about the cost of computing it safely:
//! the naive single-pass form (overflows), the LAPACK-style scaled two-pass
//! form (what software must do without the LAC's extended-exponent MAC), and
//! Blue's one-pass three-accumulator algorithm \[19\].

/// Dot product `xᵀ y`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Sum of absolute values.
pub fn asum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Index of the element with largest magnitude (first on ties).
///
/// This is the pivot search of LU factorization (§6.1.2); the LAC implements
/// it with the comparator extension to the MAC unit.
pub fn iamax(x: &[f64]) -> usize {
    assert!(!x.is_empty());
    let mut best = 0;
    let mut bestv = x[0].abs();
    for (i, v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > bestv {
            best = i;
            bestv = a;
        }
    }
    best
}

/// Naive 2-norm: `sqrt(Σ xᵢ²)`. Overflows for `|xᵢ| ≳ 1e154`.
pub fn nrm2_naive(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Safe two-pass 2-norm: scale by the max magnitude, then accumulate.
///
/// This is the `t = max|xᵢ|; y = x/t; ‖x‖ = t·‖y‖` form of §6.1.3 — the extra
/// pass and division are exactly the overhead the extended-exponent MAC
/// removes in hardware.
pub fn nrm2(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let t = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if t == 0.0 || !t.is_finite() {
        return t;
    }
    let mut acc = 0.0;
    for v in x {
        let s = v / t;
        acc += s * s;
    }
    t * acc.sqrt()
}

/// Blue's one-pass algorithm with three accumulators (small/medium/big).
pub fn nrm2_one_pass(x: &[f64]) -> f64 {
    // Thresholds chosen per Blue (1978) for binary64.
    const T_SMALL: f64 = 1.0e-146; // below: square in the scaled-up bin
    const T_BIG: f64 = 1.0e146; // above: square in the scaled-down bin
    const S_SMALL: f64 = 1.0e146; // scale applied to small values
    const S_BIG: f64 = 1.0e-146; // scale applied to big values
    let (mut a_small, mut a_med, mut a_big) = (0.0f64, 0.0f64, 0.0f64);
    for &v in x {
        let a = v.abs();
        if a > T_BIG {
            let s = a * S_BIG;
            a_big += s * s;
        } else if a < T_SMALL {
            let s = a * S_SMALL;
            a_small += s * s;
        } else {
            a_med += a * a;
        }
    }
    if a_big > 0.0 {
        // Large values dominate; medium contribution folded in scaled space.
        ((a_big + (a_med * S_BIG) * S_BIG).sqrt()) / S_BIG
    } else if a_small > 0.0 {
        if a_med > 0.0 {
            (a_med + (a_small / S_SMALL) / S_SMALL).sqrt()
        } else {
            a_small.sqrt() / S_SMALL
        }
    } else {
        a_med.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn iamax_finds_largest_magnitude() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(iamax(&[-2.0, 2.0]), 0, "first on ties");
    }

    #[test]
    fn nrm2_agrees_with_naive_in_safe_range() {
        let x = [3.0, 4.0];
        assert!((nrm2(&x) - 5.0).abs() < 1e-15);
        assert!((nrm2_naive(&x) - 5.0).abs() < 1e-15);
        assert!((nrm2_one_pass(&x) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn naive_overflows_where_scaled_does_not() {
        let x = [1e200, 1e200];
        assert!(nrm2_naive(&x).is_infinite());
        let expect = 1e200 * 2.0f64.sqrt();
        assert!((nrm2(&x) / expect - 1.0).abs() < 1e-14);
        assert!((nrm2_one_pass(&x) / expect - 1.0).abs() < 1e-14);
    }

    #[test]
    fn scaled_handles_underflow() {
        let x = [1e-200, 1e-200];
        let expect = 1e-200 * 2.0f64.sqrt();
        assert!((nrm2(&x) / expect - 1.0).abs() < 1e-14);
        assert!((nrm2_one_pass(&x) / expect - 1.0).abs() < 1e-14);
        // naive squares underflow to zero
        assert_eq!(nrm2_naive(&x), 0.0);
    }

    #[test]
    fn nrm2_empty_and_zero() {
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
        assert_eq!(nrm2_one_pass(&[0.0]), 0.0);
    }

    #[test]
    fn one_pass_mixed_magnitudes() {
        let x = [1e160, 1.0, 1e-160];
        let r = nrm2_one_pass(&x);
        assert!((r / 1e160 - 1.0).abs() < 1e-14);
    }
}
