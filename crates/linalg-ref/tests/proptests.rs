//! Property-based tests on the reference substrate's algebraic invariants.

use linalg_ref::{
    cholesky, dft_naive, fft_radix2, ifft_radix2, lu_partial_pivot, max_abs_diff, qr_householder,
    Complex, Matrix,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cholesky_reconstructs(n in 1usize..=16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random_spd(n, &mut rng);
        let l = cholesky(&a).unwrap();
        // L·Lᵀ == A (lower triangle)
        let mut rec = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for p in 0..=j {
                    s += l[(i, p)] * l[(j, p)];
                }
                rec[(i, j)] = s;
            }
        }
        prop_assert!(max_abs_diff(&rec.tril(), &a.tril()) < 1e-8 * (n as f64 + 1.0));
    }

    #[test]
    fn cholesky_diagonal_positive(n in 1usize..=16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random_spd(n, &mut rng);
        let l = cholesky(&a).unwrap();
        for i in 0..n {
            prop_assert!(l[(i, i)] > 0.0);
        }
    }

    #[test]
    fn lu_permutation_reconstructs(n in 1usize..=16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let lu = lu_partial_pivot(&a).unwrap();
        let (l, u) = lu.unpack();
        let pa = lu.apply_pivots(&a);
        let mut prod = Matrix::zeros(n, n);
        linalg_ref::gemm(&l, &u, &mut prod);
        prop_assert!(max_abs_diff(&pa, &prod) < 1e-9 * (n as f64 + 1.0));
    }

    #[test]
    fn qr_preserves_column_norms_product(m in 2usize..=16, seed in any::<u64>()) {
        let n = (m / 2).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, n, &mut rng);
        let qr = qr_householder(&a);
        // |det(R)| equals the volume of A's columns: check via Frobenius
        // norm preservation instead (Q orthogonal ⇒ ‖A‖F = ‖R‖F).
        prop_assert!((a.fro_norm() - qr.r.fro_norm()).abs() < 1e-8 * a.fro_norm().max(1.0));
    }

    #[test]
    fn fft_linearity(seed in any::<u64>(), alpha in -3.0f64..3.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rand::Rng::gen_range(&mut rng, -1.0..1.0),
                                  rand::Rng::gen_range(&mut rng, -1.0..1.0)))
            .collect();
        let y: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rand::Rng::gen_range(&mut rng, -1.0..1.0),
                                  rand::Rng::gen_range(&mut rng, -1.0..1.0)))
            .collect();
        // FFT(αx + y) = α FFT(x) + FFT(y)
        let mut lhs: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| a.scale(alpha) + *b).collect();
        fft_radix2(&mut lhs);
        let mut fx = x;
        let mut fy = y;
        fft_radix2(&mut fx);
        fft_radix2(&mut fy);
        for ((l, a), b) in lhs.iter().zip(&fx).zip(&fy) {
            let expect = a.scale(alpha) + *b;
            prop_assert!((*l - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Complex> = (0..128)
            .map(|_| Complex::new(rand::Rng::gen_range(&mut rng, -1.0..1.0),
                                  rand::Rng::gen_range(&mut rng, -1.0..1.0)))
            .collect();
        let mut y = x.clone();
        fft_radix2(&mut y);
        ifft_radix2(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn dft_parseval(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Complex> = (0..16)
            .map(|_| Complex::new(rand::Rng::gen_range(&mut rng, -1.0..1.0),
                                  rand::Rng::gen_range(&mut rng, -1.0..1.0)))
            .collect();
        let fx = dft_naive(&x);
        let te: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
        let fe: f64 = fx.iter().map(|v| v.abs() * v.abs()).sum();
        prop_assert!((fe / (16.0 * te) - 1.0).abs() < 1e-10);
    }
}
