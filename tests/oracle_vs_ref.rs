//! Registry-wide oracle harness: every workload in the registry runs at
//! three problem scales and its functional outputs are checked against
//! `linalg-ref`, both through each workload's own `check` (which encodes
//! the per-kernel tolerance) and through independent residual assertions
//! here — so a tolerance bug in `check` itself cannot hide a wrong result.

use lap::lac_kernels::{registry, registry_sized, Details, ProblemSize, Workload};
use lap::lac_sim::{LacConfig, LacEngine};
use lap::linalg_ref::{gemm, max_abs_diff, trmm, Matrix, Side, Triangle};

/// Per-kernel residual tolerances for the independent checks below. The
/// factorizations accumulate more rounding than the multiply kernels, and
/// tolerance grows with scale.
fn residual_tol(kernel: &str, size: ProblemSize) -> f64 {
    let base = match kernel {
        "gemm" | "syrk" | "trmm" | "symm" => 1e-11,
        "trsm" | "trsm-stacked" | "qr-panel" | "vecnorm" | "fft64" => 1e-9,
        "chol" | "chol-kernel" | "lu" | "lu-panel" => 1e-8,
        // The chained rounds compound factorization error (and the matrix
        // grows every round), so the composite gets the loosest budget.
        "solver-loop" => 1e-7,
        other => panic!("no tolerance registered for kernel {other}"),
    };
    match size {
        ProblemSize::Small => base,
        ProblemSize::Medium => 4.0 * base,
        ProblemSize::Large => 16.0 * base,
    }
}

fn run_one(w: &dyn Workload) -> lap::lac_kernels::KernelReport {
    let mut eng = LacEngine::builder()
        .config(w.config(LacConfig::default()))
        .build();
    let report = w
        .run(&mut eng)
        .unwrap_or_else(|e| panic!("{}: simulation error {e:?}", w.name()));
    w.check(&report)
        .unwrap_or_else(|e| panic!("oracle mismatch: {e}"));
    report
}

#[test]
fn every_workload_matches_linalg_ref_at_all_scales() {
    for size in ProblemSize::ALL {
        let workloads = registry_sized(size);
        assert!(
            workloads.len() >= 13,
            "{size:?}: registry shrank to {}",
            workloads.len()
        );
        for w in &workloads {
            let report = run_one(w.as_ref());
            assert_eq!(report.kernel, w.name());
            assert!(
                report.stats.cycles > 0 && report.useful_flops > 0,
                "{}@{size:?}: empty run",
                w.name()
            );
            // Tolerance sanity: the registered residual budget exists for
            // every kernel name (panics inside otherwise).
            let _ = residual_tol(w.name(), size);
        }
    }
}

#[test]
fn demo_registry_agrees_with_its_sized_counterparts() {
    // The canonical demo registry covers the same 13 kernels as every
    // sized suite, under the same names.
    let mut demo_names: Vec<String> = registry().iter().map(|w| w.name().into()).collect();
    demo_names.sort();
    for size in ProblemSize::ALL {
        let mut sized: Vec<String> = registry_sized(size)
            .iter()
            .map(|w| w.name().into())
            .collect();
        sized.sort();
        assert_eq!(demo_names, sized, "{size:?} kernel set diverged");
    }
}

/// Independent residual check for the factorization kernels: rebuild the
/// input from the simulated factors with reference arithmetic and compare
/// against the operand we constructed — `Workload::check` (and its
/// tolerances) are never consulted, so a bug there cannot hide a wrong
/// result here. The workloads are built directly so the operands stay in
/// hand.
#[test]
fn factorizations_reconstruct_their_inputs() {
    use lap::lac_kernels::{
        BlockedCholWorkload, BlockedLuWorkload, BlockedTrsmWorkload, LuOptions, LuPanelWorkload,
    };
    use lap::linalg_ref::{lu::LuFactors, trmm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    for (size, n, w_cols, seed) in [
        (ProblemSize::Small, 8usize, 4usize, 51u64),
        (ProblemSize::Medium, 16, 8, 52),
        (ProblemSize::Large, 32, 12, 53),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);

        // Cholesky: ‖L·Lᵀ − A‖ against the SPD input we built.
        let a = Matrix::random_spd(n, &mut rng);
        let report = run_one(&BlockedCholWorkload::new(a.clone()));
        let Details::Cholesky { l } = &report.details else {
            panic!("chol reports L")
        };
        let mut llt = Matrix::zeros(n, n);
        gemm(l, &l.transpose(), &mut llt);
        let err = max_abs_diff(&llt, &a);
        let tol = residual_tol("chol", size);
        assert!(
            err < tol,
            "chol@{size:?}: ‖L·Lᵀ − A‖ = {err:.3e} ≥ {tol:.0e}"
        );

        // LU (blocked square + tall panel): ‖L·U − P·A‖ via the reference
        // crate's unpack/pivot helpers applied to the *simulated* factors.
        let lu_inputs = [
            ("lu", Matrix::random(n, n, &mut rng)),
            ("lu-panel", Matrix::random(2 * n, 4, &mut rng)),
        ];
        for (kernel, a) in lu_inputs {
            let report = if kernel == "lu" {
                run_one(&BlockedLuWorkload::new(a.clone(), LuOptions::default()))
            } else {
                run_one(&LuPanelWorkload::new(a.clone(), LuOptions::default()))
            };
            let Details::Lu { factors, pivots } = &report.details else {
                panic!("{kernel} reports factors")
            };
            assert_eq!(
                pivots.len(),
                factors.rows().min(factors.cols()),
                "{kernel}@{size:?}: one pivot per elimination step"
            );
            for (i, &p) in pivots.iter().enumerate() {
                assert!(
                    (i..factors.rows()).contains(&p),
                    "{kernel}@{size:?}: pivot {p} at step {i} out of range"
                );
            }
            let sim = LuFactors {
                factors: factors.clone(),
                pivots: pivots.clone(),
            };
            let (l, u) = sim.unpack();
            let mut lu = Matrix::zeros(a.rows(), a.cols());
            gemm(&l, &u, &mut lu);
            let err = max_abs_diff(&lu, &sim.apply_pivots(&a));
            let tol = residual_tol(kernel, size);
            assert!(
                err < tol,
                "{kernel}@{size:?}: ‖L·U − P·A‖ = {err:.3e} ≥ {tol:.0e}"
            );
        }

        // TRSM: multiply the solution back, ‖L·X − B‖ against the input B.
        let l = Matrix::random_lower_triangular(n, &mut rng);
        let b = Matrix::random(n, w_cols, &mut rng);
        let report = run_one(&BlockedTrsmWorkload::new(l.clone(), b.clone()));
        let Details::Trsm { x } = &report.details else {
            panic!("trsm reports X")
        };
        let mut lx = x.clone();
        trmm(Side::Left, Triangle::Lower, &l, &mut lx);
        let err = max_abs_diff(&lx, &b);
        let tol = residual_tol("trsm", size);
        assert!(
            err < tol,
            "trsm@{size:?}: ‖L·X − B‖ = {err:.3e} ≥ {tol:.0e}"
        );
    }
}

/// Independent residual check for the solver loop: reconstruct the round
/// matrices from the *simulated* factors with reference arithmetic only —
/// `Aₖ₊₁ = Aₖ + Σₚ Xₖ,ₚ·Xₖ,ₚᵀ` with `Xₖ,ₚ` solved by reference TRSM
/// against the simulated `Lₖ` — and require `‖Lₖ·Lₖᵀ − Aₖ‖` small every
/// round. `SolverLoopWorkload::check` is never consulted.
#[test]
fn solver_loop_factors_reconstruct_every_round() {
    use lap::lac_kernels::{SolverLoopParams, SolverLoopWorkload};
    use lap::linalg_ref::trsm;

    let wl = SolverLoopWorkload::new(SolverLoopParams {
        n: 16,
        rounds: 4,
        panels: 2,
        width: 8,
        salt: 77,
    });
    let report = run_one(&wl);
    let Details::Solver { factors, final_a } = &report.details else {
        panic!("solver reports factors")
    };
    assert_eq!(factors.len(), 4);
    let mut a = wl.a0.clone();
    for (k, l) in factors.iter().enumerate() {
        let mut llt = Matrix::zeros(a.rows(), a.cols());
        gemm(l, &l.transpose(), &mut llt);
        let scale = 1.0 + a.fro_norm();
        let err = max_abs_diff(&llt, &a) / scale;
        assert!(err < 1e-7, "round {k}: ‖L·Lᵀ − A‖/‖A‖ = {err:.3e}");
        for p in 0..wl.params.panels {
            let mut x = wl.b_panel(p);
            trsm(Side::Left, Triangle::Lower, l, &mut x);
            let mut s = Matrix::zeros(a.rows(), a.cols());
            gemm(&x, &x.transpose(), &mut s);
            for j in 0..a.cols() {
                for i in 0..a.rows() {
                    a[(i, j)] += s[(i, j)];
                }
            }
        }
    }
    let scale = 1.0 + a.fro_norm();
    assert!(
        max_abs_diff(final_a, &a) / scale < 1e-7,
        "final A diverges from the reference-rebuilt chain"
    );
}

/// TRMM cross-oracle: the simulated L·B equals reference `trmm` *and* the
/// reference full GEMM with L densified — two independent references.
#[test]
fn trmm_agrees_with_two_references() {
    use lap::lac_kernels::TrmmWorkload;
    for (n, w_cols, salt) in [(8usize, 4usize, 41u64), (16, 8, 42), (24, 8, 43)] {
        let l = Matrix::from_fn(n, n, |i, j| {
            if i > j {
                ((i * 31 + j * 17 + salt as usize) % 19) as f64 / 19.0 - 0.5
            } else if i == j {
                1.25
            } else {
                0.0
            }
        });
        let b = Matrix::from_fn(n, w_cols, |i, j| {
            ((i * 13 + j * 7 + salt as usize) % 23) as f64 / 23.0 - 0.5
        });
        let wl = TrmmWorkload::new(l.clone(), b.clone());
        let report = run_one(&wl);
        let Details::Gemm { c } = &report.details else {
            panic!("trmm reports a product")
        };
        let mut ref1 = b.clone();
        trmm(Side::Left, Triangle::Lower, &l, &mut ref1);
        let mut ref2 = Matrix::zeros(n, w_cols);
        gemm(&l, &b, &mut ref2);
        assert!(max_abs_diff(c, &ref1) < 1e-10);
        assert!(max_abs_diff(c, &ref2) < 1e-10);
        assert!(max_abs_diff(&ref1, &ref2) < 1e-12, "references disagree");
    }
}
