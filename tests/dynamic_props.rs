//! Property tests for the continuation subsystem under real
//! convergence-driven clients (`IppmmWorkload`, `IpddpFleet`).
//!
//! The claims under test are the contract `lac_sim::dynamic` documents:
//!
//! * **Bit-determinism** — a dynamic run's outputs, segment counts and
//!   iteration counts are a pure function of the request, identical
//!   across scheduler policies, service/cluster backends, warm reruns,
//!   and chip-loss replays.
//! * **Budget conservation** — every appended segment is charged against
//!   the tenant's `max_inflight_cost` exactly like a fresh submission:
//!   in-flight cost never exceeds the budget, drains to zero, and the
//!   completed-cost ledger adds up to what the outcomes report.
//! * **Typed backpressure** — a segment that can never fit surfaces as
//!   `DynamicError::BudgetExhausted`, not a hang.

// NB: the vendored proptest! shim's matcher does not accept `///` doc
// comments on the test fns — use `//` comments inside the block.

mod common;

use common::{qp, ALL_POLICIES};
use lap::lac_kernels::{IpddpParams, IppmmWorkload, KernelReport};
use lap::lac_sim::dynamic::{run_dynamic, DynamicError, DynamicRun};
use lap::lac_sim::{
    ChipConfig, ClusterConfig, FaultPlan, LacCluster, LacConfig, LacService, Scheduler,
    TenantConfig,
};
use proptest::prelude::*;

fn run_on_service(
    w: &IppmmWorkload,
    cores: usize,
    sched: Scheduler,
) -> (DynamicRun<KernelReport>, u64) {
    let mut svc = LacService::new(ChipConfig::new(cores, LacConfig::default()));
    let t = svc.add_tenant(TenantConfig::new("qp"));
    let run = run_dynamic(&mut svc, vec![(t, w.dynamic())], sched).expect("dynamic run");
    assert_eq!(svc.tenant_session(t).inflight_cost, 0);
    (run, svc.tenant_session(t).cost_completed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Appended work is bit-deterministic: the same dynamic QP solve
    // produces the same output bits — and the same iteration count —
    // no matter the policy, the core count, the backend, or how many
    // times it reruns on a warm service.
    #[test]
    fn dynamic_outputs_are_bit_identical_across_policies_backends_and_reruns(
        salt in 100u64..100_000,
    ) {
        let w = qp(salt);
        let reference = w.reference().expect("reference IPM converges");
        let (base, _) = run_on_service(&w, 2, Scheduler::Fifo);
        w.check(&base.outcomes[0]).expect("device solve matches linalg-ref");
        prop_assert_eq!(base.outcomes[0].iterations(), reference.iterations);

        // Policies and core counts move *when* jobs run, never what they
        // compute — or how many segments the continuation appends.
        for sched in ALL_POLICIES {
            for cores in [1usize, 3] {
                let (run, _) = run_on_service(&w, cores, sched);
                prop_assert_eq!(&run, &base, "policy/core sweep diverged");
            }
        }

        // Warm rerun on one long-lived service: same bits again.
        let mut svc = LacService::new(ChipConfig::new(2, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("warm"));
        let first = run_dynamic(&mut svc, vec![(t, w.dynamic())], Scheduler::FairShare).unwrap();
        let second = run_dynamic(&mut svc, vec![(t, w.dynamic())], Scheduler::FairShare).unwrap();
        prop_assert_eq!(&first, &second, "warm rerun diverged");
        prop_assert_eq!(&first, &base);

        // Cluster backend: same request, modeled transfers, same bits.
        let mut cl = LacCluster::new(ClusterConfig::homogeneous(
            2,
            ChipConfig::new(1, LacConfig::default()),
        ));
        let t = cl.add_tenant(TenantConfig::new("cl"));
        let clustered = run_dynamic(&mut cl, vec![(t, w.dynamic())], Scheduler::CriticalPath)
            .expect("cluster dynamic run");
        prop_assert_eq!(&clustered.outcomes, &base.outcomes, "cluster backend diverged");
    }

    // Tenant cost accounting stays conserved while graphs grow: with a
    // budget that admits one segment at a time, two concurrent dynamic
    // solves interleave through bounce-retry, the in-flight ledger
    // drains to zero, and completed cost equals what the outcomes claim
    // — appended segments included.
    #[test]
    fn inflight_cost_is_conserved_as_graphs_grow(
        (salt, slots) in (100u64..100_000, 1u64..3),
    ) {
        let w = qp(salt);
        let segment_cost = w.iteration_cost();
        let mut svc = LacService::new(ChipConfig::new(2, LacConfig::default()));
        let t = svc.add_tenant(
            TenantConfig::new("tight").with_admission_budget(slots * segment_cost),
        );
        let run = run_dynamic(
            &mut svc,
            vec![(t, w.dynamic()), (t, w.dynamic())],
            Scheduler::FairShare,
        )
        .expect("both solves fit one segment at a time");
        for out in &run.outcomes {
            w.check(out).expect("interleaved solve matches linalg-ref");
            prop_assert_eq!(out.total_cost, out.iterations() as u64 * segment_cost);
            prop_assert_eq!(out.appended_cost, out.total_cost - segment_cost);
        }
        let s = svc.tenant_session(t);
        prop_assert_eq!(s.inflight_cost, 0, "ledger must drain");
        prop_assert_eq!(
            s.cost_completed,
            run.outcomes.iter().map(|o| o.total_cost).sum::<u64>()
        );
        if slots == 1 {
            // One slot, two requests: admission control must have bounced.
            prop_assert!(s.graphs_rejected > 0, "backpressure never engaged");
        }
    }

    // Chip loss mid-solve replays to the same bits: a cluster that loses
    // one of its chips requeues the dead chip's jobs and still produces
    // the exact outputs — and segment counts — of the fault-free run.
    #[test]
    fn continuation_survives_a_chip_kill_bit_identically(
        (salt, kill_tick) in (100u64..100_000, 1u64..20_000),
    ) {
        let w = qp(salt);
        let run = |fault: Option<FaultPlan>| {
            let mut cl = LacCluster::new(ClusterConfig::homogeneous(
                2,
                ChipConfig::new(1, LacConfig::default()),
            ));
            if let Some(plan) = fault {
                cl.inject_faults(plan);
            }
            let t = cl.add_tenant(TenantConfig::new("faulted"));
            run_dynamic(&mut cl, vec![(t, w.dynamic())], Scheduler::FairShare)
                .expect("kill is survivable with one chip left")
        };
        let clean = run(None);
        let killed = run(Some(FaultPlan::new().kill(1, kill_tick)));
        prop_assert_eq!(&killed.outcomes, &clean.outcomes, "kill replay diverged");
        w.check(&killed.outcomes[0]).expect("post-kill solve matches linalg-ref");
    }
}

/// A continuation whose appended segment can never fit its tenant's
/// budget must surface as typed backpressure, not a spin: the fleet's
/// initial two-member sweep costs more than one member's budget.
#[test]
fn undersized_budget_is_typed_backpressure() {
    let fleet = lap::lac_kernels::IpddpFleet::new(IpddpParams {
        members: 2,
        horizon: 8,
        salt: 91,
        ..IpddpParams::default()
    });
    let mut svc = LacService::new(ChipConfig::new(2, LacConfig::default()));
    let t =
        svc.add_tenant(TenantConfig::new("starved").with_admission_budget(fleet.sweep_cost() / 2));
    let err = run_dynamic(&mut svc, vec![(t, fleet.dynamic())], Scheduler::Fifo).unwrap_err();
    match err {
        DynamicError::BudgetExhausted {
            segment,
            graph_cost,
            budget,
            ..
        } => {
            assert_eq!(segment, 0, "the initial sweep already cannot fit");
            assert!(graph_cost > budget);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert_eq!(svc.tenant_session(t).inflight_cost, 0);
}
