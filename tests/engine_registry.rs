//! Engine-level integration test: every workload in the registry runs on
//! the default 4×4 configuration through a `LacEngine` session, and its
//! functional output is cross-checked against `linalg-ref` by the
//! workload's own `check`. No kernel is named — new registry entries are
//! covered automatically.

use lap::lac_kernels::registry;
use lap::lac_power::{EnergyModel, SessionEnergy};
use lap::lac_sim::{LacConfig, LacEngine};

#[test]
fn every_registry_workload_runs_and_verifies_on_default_config() {
    let workloads = registry();
    assert!(workloads.len() >= 12, "registry covers every kernel");
    for w in &workloads {
        let cfg = w.config(LacConfig::default());
        let mut eng = LacEngine::builder().config(cfg).build();
        let report = w
            .run(&mut eng)
            .unwrap_or_else(|e| panic!("{}: {e:?}", w.name()));
        w.check(&report)
            .unwrap_or_else(|e| panic!("verification failed: {e}"));

        assert_eq!(report.kernel, w.name());
        assert!(report.stats.cycles > 0, "{}: no cycles simulated", w.name());
        assert!(report.useful_flops > 0, "{}: no useful work", w.name());
        assert!(
            (0.0..=1.0).contains(&report.utilization),
            "{}: utilization {} out of range",
            w.name(),
            report.utilization
        );
        assert_eq!(eng.workloads_run(), 1, "{}: workload not metered", w.name());
        assert_eq!(
            eng.cycles(),
            report.stats.cycles,
            "{}: session stats disagree with report",
            w.name()
        );
    }
}

#[test]
fn one_session_runs_the_whole_registry_back_to_back() {
    // The engine survives arbitrary workload sequences with state reuse;
    // the session accumulator equals the sum of the per-run reports, and
    // the accumulated stats price out to a positive energy.
    let mut eng = LacEngine::builder().config(shared_config()).build();
    let mut total_cycles = 0u64;
    let mut ran = 0u64;
    for w in registry() {
        let report = w
            .run(&mut eng)
            .unwrap_or_else(|e| panic!("{}: {e:?}", w.name()));
        w.check(&report)
            .unwrap_or_else(|e| panic!("verification failed: {e}"));
        total_cycles += report.stats.cycles;
        ran += 1;
    }
    assert_eq!(eng.workloads_run(), ran);
    assert_eq!(eng.cycles(), total_cycles);
    let energy = eng.energy_summary(&EnergyModel::lac_default());
    assert!(energy.energy_nj > 0.0 && energy.avg_power_mw > 0.0);
}

/// A single configuration every registry workload can run on: the default
/// core plus the wide accumulator (harmless for kernels that ignore it).
fn shared_config() -> LacConfig {
    let mut cfg = LacConfig::default();
    for w in registry() {
        cfg = w.config(cfg);
    }
    cfg
}
