//! Property tests (vendored proptest) for the dependency-graph scheduler:
//! whatever the DAG shape, core count, costs, and policy —
//!
//! * every job runs exactly once, and never before all its parents
//!   finished (observed through a shared execution log);
//! * per-core busy + idle cycles reconstruct the makespan exactly;
//! * wave planning is work-conserving: no core idles while a ready job
//!   exists, and no core hoards when jobs are scarcer than cores;
//! * named shapes (chain, diamond, fan-out) produce the wave structure
//!   they must.

mod common;

use common::{any_policy, mac_job, policy, random_log_dag, ALL_POLICIES, POLICIES};
use lap::lac_sim::{
    plan_wave, ChipConfig, ExecStats, JobGraph, LacChip, LacConfig, LacService, Scheduler,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dag_runs_every_job_once_and_parents_first(
        extras in prop::collection::vec(0usize..16, 1..32),
        seeds in prop::collection::vec(any::<u64>(), 8..9),
        cores in 1usize..=5,
        which in any::<u8>(),
    ) {
        let (graph, edges, log) = random_log_dag(&extras, &seeds);
        let mut chip = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
        let run = chip.run_graph(&graph, any_policy(which)).unwrap();

        // Exactly once.
        prop_assert_eq!(run.outputs.len(), extras.len());
        let order = log.lock().unwrap().clone();
        prop_assert_eq!(order.len(), extras.len(), "log: every job exactly once");
        let mut position = vec![usize::MAX; extras.len()];
        for (pos, &id) in order.iter().enumerate() {
            prop_assert_eq!(position[id], usize::MAX, "job {} logged twice", id);
            position[id] = pos;
        }
        // No job before its parents.
        for &(p, c) in &edges {
            prop_assert!(
                position[p] < position[c],
                "child {} ran before parent {}", c, p
            );
        }

        // Accounting: aggregate = Σ per-core; busy + idle = makespan.
        let mut sum = ExecStats::default();
        for s in &run.stats.per_core {
            sum.merge(s);
        }
        prop_assert_eq!(sum, run.stats.aggregate);
        for core in 0..cores {
            prop_assert_eq!(
                run.stats.per_core[core].cycles + run.idle_per_core[core],
                run.stats.makespan_cycles
            );
        }
        // The makespan sits between the critical chain bound and fully
        // serial execution.
        prop_assert!(run.stats.makespan_cycles <= run.stats.aggregate.cycles);
        prop_assert!(run.waves >= 1 && run.waves <= extras.len());
    }

    #[test]
    fn dag_results_are_policy_and_backend_independent(
        extras in prop::collection::vec(0usize..12, 1..16),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        cores in 1usize..=4,
    ) {
        let mut baseline: Option<Vec<ExecStats>> = None;
        for sched in ALL_POLICIES {
            // Scoped-chip backend…
            let (graph, _, _) = random_log_dag(&extras, &seeds);
            let mut chip = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
            let chip_run = chip.run_graph(&graph, sched).unwrap();
            // …and the persistent service must agree bit for bit.
            let (graph, _, _) = random_log_dag(&extras, &seeds);
            let mut svc = LacService::new(ChipConfig::new(cores, LacConfig::default()));
            let svc_run = svc.submit(graph, sched).unwrap();
            prop_assert_eq!(&chip_run.outputs, &svc_run.outputs);
            prop_assert_eq!(&chip_run.stats, &svc_run.stats);
            match &baseline {
                None => baseline = Some(chip_run.outputs),
                Some(b) => prop_assert_eq!(b, &chip_run.outputs, "{:?} changed results", sched),
            }
        }
    }

    #[test]
    fn wave_planning_is_work_conserving(
        costs in prop::collection::vec(1u64..1000, 1..48),
        cores in 1usize..=8,
        which in any::<u8>(),
    ) {
        let ready: Vec<usize> = (0..costs.len()).collect();
        let buckets = plan_wave(policy(which), &ready, &costs, &costs, cores);
        // Every ready job lands in exactly one bucket.
        let mut seen: Vec<usize> = buckets.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, ready.clone());
        if ready.len() >= cores {
            // No core idles while a ready job exists…
            prop_assert!(
                buckets.iter().all(|b| !b.is_empty()),
                "{:?} idled a core with {} ready jobs", policy(which), ready.len()
            );
        } else {
            // …and no core hoards while another sits empty.
            prop_assert!(buckets.iter().all(|b| b.len() <= 1));
        }
    }
}

#[test]
fn chain_diamond_fanout_produce_their_wave_structure() {
    for sched in POLICIES {
        // Chain: n sequential jobs → n waves, zero overlap.
        let mut chain = JobGraph::new();
        let mut prev = chain.add(mac_job(0));
        for i in 1..6 {
            prev = chain.add_after(mac_job(i), &[prev]);
        }
        let mut chip = LacChip::new(ChipConfig::new(4, LacConfig::default()));
        let run = chip.run_graph(&chain, sched).unwrap();
        assert_eq!(run.waves, 6, "{sched:?}: chain depth");
        assert_eq!(
            run.stats.makespan_cycles, run.stats.aggregate.cycles,
            "{sched:?}: a chain cannot overlap"
        );

        // Diamond: 1 → {2..5} → 1 on 4 cores → 3 waves, middle overlaps.
        let mut diamond = JobGraph::new();
        let top = diamond.add(mac_job(0));
        let mids: Vec<_> = (0..4)
            .map(|i| diamond.add_after(mac_job(4 * i), &[top]))
            .collect();
        diamond.add_after(mac_job(0), &mids);
        let mut chip = LacChip::new(ChipConfig::new(4, LacConfig::default()));
        let run = chip.run_graph(&diamond, sched).unwrap();
        assert_eq!(run.waves, 3, "{sched:?}: diamond depth");
        let mid_cycles: Vec<u64> = mids.iter().map(|m| run.outputs[m.index()].cycles).collect();
        assert_eq!(
            run.stats.makespan_cycles,
            run.outputs[0].cycles
                + mid_cycles.iter().copied().max().unwrap()
                + run.outputs[5].cycles,
            "{sched:?}: middle wave runs at the slowest middle job"
        );

        // Fan-out: 1 root, 8 leaves on 4 cores → 2 waves, leaves spread
        // across all cores.
        let mut fan = JobGraph::new();
        let root = fan.add(mac_job(0));
        for i in 0..8 {
            fan.add_after(mac_job(i), &[root]);
        }
        let mut chip = LacChip::new(ChipConfig::new(4, LacConfig::default()));
        let run = chip.run_graph(&fan, sched).unwrap();
        assert_eq!(run.waves, 2, "{sched:?}: fan-out depth");
        let leaf_cores: std::collections::HashSet<usize> =
            run.assignment[1..].iter().copied().collect();
        assert_eq!(leaf_cores.len(), 4, "{sched:?}: leaves use every core");
    }
}

#[test]
fn critical_path_prioritizes_long_chains_over_heavy_singletons() {
    // Wave 1's ready set holds a cost-20 job heading a 5-deep chain
    // (remaining path 100) and a lone cost-50 job. On two cores the
    // critical-path policy must serve the chain head first (it lands on
    // core 0, the first greedy pick); the lone job fills core 1 in the
    // same wave and the chain keeps the run at 5 waves.
    let mut chain_job = mac_job(8);
    chain_job.cost = 20;
    let mut lone = chain_job.clone();
    lone.cost = 50;
    let mut g = JobGraph::new();
    let head = g.add(chain_job.clone());
    let mut prev = head;
    for _ in 0..4 {
        prev = g.add_after(chain_job.clone(), &[prev]);
    }
    let lone_id = g.add(lone);
    let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
    let run = chip.run_graph(&g, Scheduler::CriticalPath).unwrap();
    assert_eq!(run.waves, 5, "the chain sets the depth");
    assert_eq!(
        run.assignment[head.index()],
        0,
        "highest critical path gets the first slot"
    );
    assert_eq!(
        run.assignment[lone_id.index()],
        1,
        "the singleton overlaps the chain head, not the whole chain"
    );
    // LeastLoaded ignores the chain structure: it sees cost 20 vs 50 in
    // submission order and still must produce identical outputs.
    let mut chip_ll = LacChip::new(ChipConfig::new(2, LacConfig::default()));
    let run_ll = chip_ll.run_graph(&g, Scheduler::LeastLoaded).unwrap();
    assert_eq!(run.outputs, run_ll.outputs);
}
