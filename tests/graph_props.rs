//! Property tests (vendored proptest) for the dependency-graph scheduler:
//! whatever the DAG shape, core count, costs, and policy —
//!
//! * every job runs exactly once, and never before all its parents
//!   finished (observed through a shared execution log);
//! * per-core busy + idle cycles reconstruct the makespan exactly;
//! * wave planning is work-conserving: no core idles while a ready job
//!   exists, and no core hoards when jobs are scarcer than cores;
//! * named shapes (chain, diamond, fan-out) produce the wave structure
//!   they must.

use lap::lac_sim::{
    plan_wave, ChipConfig, ChipJob, ExecStats, JobGraph, LacChip, LacConfig, LacEngine, LacService,
    ProgramJob, Scheduler, SimError,
};
use lap::lac_sim::{ExtOp, ProgramBuilder, Source};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// The full-dispatch policies (every wave drains the ready set — what the
/// wave-planning work-conservation shape assumes). The quantum-capped
/// `FairShare` joins [`ALL_POLICIES`] for the policy-independent
/// invariants; its own planner properties live in
/// `tests/service_props.rs`.
const POLICIES: [Scheduler; 3] = [
    Scheduler::Fifo,
    Scheduler::LeastLoaded,
    Scheduler::CriticalPath,
];

const ALL_POLICIES: [Scheduler; 4] = [
    Scheduler::Fifo,
    Scheduler::LeastLoaded,
    Scheduler::CriticalPath,
    Scheduler::FairShare,
];

fn policy(which: u8) -> Scheduler {
    POLICIES[which as usize % 3]
}

fn any_policy(which: u8) -> Scheduler {
    ALL_POLICIES[which as usize % 4]
}

fn mac_job(extra: usize) -> ProgramJob {
    let cfg = LacConfig::default();
    let mut b = ProgramBuilder::new(cfg.nr);
    let t = b.push_step();
    b.ext(t, ExtOp::Load { col: 0, addr: 0 });
    b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
    let t = b.push_step();
    b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
    b.idle(cfg.fpu.pipeline_depth + extra);
    ProgramJob::new(b.build())
}

/// A job that appends its id to a shared log when it runs — the probe for
/// the parents-run-first invariant. (Same-wave log order is host-timing
/// dependent; parent→child pairs never share a wave, so their relative
/// order is not.)
struct LogJob {
    id: usize,
    inner: ProgramJob,
    log: Arc<Mutex<Vec<usize>>>,
}

impl ChipJob for LogJob {
    type Output = ExecStats;

    fn cost_hint(&self) -> u64 {
        self.inner.cost_hint()
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<ExecStats, SimError> {
        let out = self.inner.run_on(eng)?;
        self.log.lock().unwrap().push(self.id);
        Ok(out)
    }
}

/// Build a pseudo-random DAG: job `j > 0` gets up to two parents drawn
/// from `seeds` (values index earlier jobs; a sentinel leaves some jobs
/// as roots). Returns the graph, its edges, and the shared log.
#[allow(clippy::type_complexity)]
fn random_dag(
    extras: &[usize],
    seeds: &[u64],
) -> (
    JobGraph<LogJob>,
    Vec<(usize, usize)>,
    Arc<Mutex<Vec<usize>>>,
) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut graph = JobGraph::new();
    let mut edges = Vec::new();
    let mut ids = Vec::new();
    for (j, &extra) in extras.iter().enumerate() {
        let mut parents = Vec::new();
        if j > 0 {
            for take in 0..2usize {
                let seed = seeds[(2 * j + take) % seeds.len()];
                // ~1 in 3 candidate slots stays empty, keeping a mix of
                // roots, chains and joins.
                if !seed.is_multiple_of(3) {
                    let p = (seed as usize) % j;
                    parents.push(ids[p]);
                    edges.push((p, j));
                }
            }
        }
        let id = graph.add_after(
            LogJob {
                id: j,
                inner: mac_job(extra),
                log: Arc::clone(&log),
            },
            &parents,
        );
        assert_eq!(id.index(), j);
        ids.push(id);
    }
    edges.sort_unstable();
    edges.dedup();
    (graph, edges, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dag_runs_every_job_once_and_parents_first(
        extras in prop::collection::vec(0usize..16, 1..32),
        seeds in prop::collection::vec(any::<u64>(), 8..9),
        cores in 1usize..=5,
        which in any::<u8>(),
    ) {
        let (graph, edges, log) = random_dag(&extras, &seeds);
        let mut chip = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
        let run = chip.run_graph(&graph, any_policy(which)).unwrap();

        // Exactly once.
        prop_assert_eq!(run.outputs.len(), extras.len());
        let order = log.lock().unwrap().clone();
        prop_assert_eq!(order.len(), extras.len(), "log: every job exactly once");
        let mut position = vec![usize::MAX; extras.len()];
        for (pos, &id) in order.iter().enumerate() {
            prop_assert_eq!(position[id], usize::MAX, "job {} logged twice", id);
            position[id] = pos;
        }
        // No job before its parents.
        for &(p, c) in &edges {
            prop_assert!(
                position[p] < position[c],
                "child {} ran before parent {}", c, p
            );
        }

        // Accounting: aggregate = Σ per-core; busy + idle = makespan.
        let mut sum = ExecStats::default();
        for s in &run.stats.per_core {
            sum.merge(s);
        }
        prop_assert_eq!(sum, run.stats.aggregate);
        for core in 0..cores {
            prop_assert_eq!(
                run.stats.per_core[core].cycles + run.idle_per_core[core],
                run.stats.makespan_cycles
            );
        }
        // The makespan sits between the critical chain bound and fully
        // serial execution.
        prop_assert!(run.stats.makespan_cycles <= run.stats.aggregate.cycles);
        prop_assert!(run.waves >= 1 && run.waves <= extras.len());
    }

    #[test]
    fn dag_results_are_policy_and_backend_independent(
        extras in prop::collection::vec(0usize..12, 1..16),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        cores in 1usize..=4,
    ) {
        let mut baseline: Option<Vec<ExecStats>> = None;
        for sched in ALL_POLICIES {
            // Scoped-chip backend…
            let (graph, _, _) = random_dag(&extras, &seeds);
            let mut chip = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
            let chip_run = chip.run_graph(&graph, sched).unwrap();
            // …and the persistent service must agree bit for bit.
            let (graph, _, _) = random_dag(&extras, &seeds);
            let mut svc = LacService::new(ChipConfig::new(cores, LacConfig::default()));
            let svc_run = svc.submit(graph, sched).unwrap();
            prop_assert_eq!(&chip_run.outputs, &svc_run.outputs);
            prop_assert_eq!(&chip_run.stats, &svc_run.stats);
            match &baseline {
                None => baseline = Some(chip_run.outputs),
                Some(b) => prop_assert_eq!(b, &chip_run.outputs, "{:?} changed results", sched),
            }
        }
    }

    #[test]
    fn wave_planning_is_work_conserving(
        costs in prop::collection::vec(1u64..1000, 1..48),
        cores in 1usize..=8,
        which in any::<u8>(),
    ) {
        let ready: Vec<usize> = (0..costs.len()).collect();
        let buckets = plan_wave(policy(which), &ready, &costs, &costs, cores);
        // Every ready job lands in exactly one bucket.
        let mut seen: Vec<usize> = buckets.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, ready.clone());
        if ready.len() >= cores {
            // No core idles while a ready job exists…
            prop_assert!(
                buckets.iter().all(|b| !b.is_empty()),
                "{:?} idled a core with {} ready jobs", policy(which), ready.len()
            );
        } else {
            // …and no core hoards while another sits empty.
            prop_assert!(buckets.iter().all(|b| b.len() <= 1));
        }
    }
}

#[test]
fn chain_diamond_fanout_produce_their_wave_structure() {
    for sched in POLICIES {
        // Chain: n sequential jobs → n waves, zero overlap.
        let mut chain = JobGraph::new();
        let mut prev = chain.add(mac_job(0));
        for i in 1..6 {
            prev = chain.add_after(mac_job(i), &[prev]);
        }
        let mut chip = LacChip::new(ChipConfig::new(4, LacConfig::default()));
        let run = chip.run_graph(&chain, sched).unwrap();
        assert_eq!(run.waves, 6, "{sched:?}: chain depth");
        assert_eq!(
            run.stats.makespan_cycles, run.stats.aggregate.cycles,
            "{sched:?}: a chain cannot overlap"
        );

        // Diamond: 1 → {2..5} → 1 on 4 cores → 3 waves, middle overlaps.
        let mut diamond = JobGraph::new();
        let top = diamond.add(mac_job(0));
        let mids: Vec<_> = (0..4)
            .map(|i| diamond.add_after(mac_job(4 * i), &[top]))
            .collect();
        diamond.add_after(mac_job(0), &mids);
        let mut chip = LacChip::new(ChipConfig::new(4, LacConfig::default()));
        let run = chip.run_graph(&diamond, sched).unwrap();
        assert_eq!(run.waves, 3, "{sched:?}: diamond depth");
        let mid_cycles: Vec<u64> = mids.iter().map(|m| run.outputs[m.index()].cycles).collect();
        assert_eq!(
            run.stats.makespan_cycles,
            run.outputs[0].cycles
                + mid_cycles.iter().copied().max().unwrap()
                + run.outputs[5].cycles,
            "{sched:?}: middle wave runs at the slowest middle job"
        );

        // Fan-out: 1 root, 8 leaves on 4 cores → 2 waves, leaves spread
        // across all cores.
        let mut fan = JobGraph::new();
        let root = fan.add(mac_job(0));
        for i in 0..8 {
            fan.add_after(mac_job(i), &[root]);
        }
        let mut chip = LacChip::new(ChipConfig::new(4, LacConfig::default()));
        let run = chip.run_graph(&fan, sched).unwrap();
        assert_eq!(run.waves, 2, "{sched:?}: fan-out depth");
        let leaf_cores: std::collections::HashSet<usize> =
            run.assignment[1..].iter().copied().collect();
        assert_eq!(leaf_cores.len(), 4, "{sched:?}: leaves use every core");
    }
}

#[test]
fn critical_path_prioritizes_long_chains_over_heavy_singletons() {
    // Wave 1's ready set holds a cost-20 job heading a 5-deep chain
    // (remaining path 100) and a lone cost-50 job. On two cores the
    // critical-path policy must serve the chain head first (it lands on
    // core 0, the first greedy pick); the lone job fills core 1 in the
    // same wave and the chain keeps the run at 5 waves.
    let mut chain_job = mac_job(8);
    chain_job.cost = 20;
    let mut lone = chain_job.clone();
    lone.cost = 50;
    let mut g = JobGraph::new();
    let head = g.add(chain_job.clone());
    let mut prev = head;
    for _ in 0..4 {
        prev = g.add_after(chain_job.clone(), &[prev]);
    }
    let lone_id = g.add(lone);
    let mut chip = LacChip::new(ChipConfig::new(2, LacConfig::default()));
    let run = chip.run_graph(&g, Scheduler::CriticalPath).unwrap();
    assert_eq!(run.waves, 5, "the chain sets the depth");
    assert_eq!(
        run.assignment[head.index()],
        0,
        "highest critical path gets the first slot"
    );
    assert_eq!(
        run.assignment[lone_id.index()],
        1,
        "the singleton overlaps the chain head, not the whole chain"
    );
    // LeastLoaded ignores the chain structure: it sees cost 20 vs 50 in
    // submission order and still must produce identical outputs.
    let mut chip_ll = LacChip::new(ChipConfig::new(2, LacConfig::default()));
    let run_ll = chip_ll.run_graph(&g, Scheduler::LeastLoaded).unwrap();
    assert_eq!(run.outputs, run_ll.outputs);
}
