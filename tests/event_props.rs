//! Differential property tests for the discrete-event simulation core
//! (`SimMode::Event`) against the wave coordinator (`SimMode::Wave`):
//!
//! * **bits never change across modes**: whatever the DAG, policy,
//!   backend (chip, service, cluster, multi-tenant round), fault kill
//!   or warm rerun, outputs are bit-identical between modes — the event
//!   core moves *when* jobs run, never what they compute;
//! * **overlap only helps**: on layered cut-edge graphs, where the
//!   per-hop link latency dominates compute, the event core's makespan
//!   never exceeds the wave coordinator's;
//! * **`SimMode::Wave` is the compatibility mode**: a default-config
//!   run is bit-identical — outputs, stats, clocks and event log — to
//!   an explicit `with_sim_mode(SimMode::Wave)` run;
//! * **accounting still closes under overlap**: `busy + idle + stall =
//!   makespan` on every core of every chip in event mode, every job
//!   retires exactly one non-discarded execution under a kill, and
//!   `to_chrome_trace()` still parses via `lac_bench`'s own JSON parser
//!   even though event-mode spans interleave on the timeline.

// NB: the vendored proptest! shim's matcher does not accept `///` doc
// comments on the test fns — use `//` comments inside the block.

mod common;

use common::{any_policy, check_exactly_once, random_sized_dag, SizedJob};
use lac_bench::json::Json;
use lap::lac_sim::{
    ChipConfig, ClusterConfig, FaultPlan, JobGraph, LacChip, LacCluster, LacConfig, LacService,
    Partitioner, Scheduler, SimMode, TenantConfig, TraceEvent,
};
use proptest::prelude::*;

fn cluster_cfg(chips: usize, cores: usize, mode: SimMode) -> ClusterConfig {
    ClusterConfig::homogeneous(chips, ChipConfig::new(cores, LacConfig::default()))
        .with_sim_mode(mode)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The cluster door: fault-free, under a single (chip, tick) kill,
    // and on a warm rerun, event mode reproduces wave mode's bits.
    #[test]
    fn cluster_outputs_are_bit_identical_across_sim_modes(
        extras in prop::collection::vec(0usize..10, 2..16),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        chips in 2usize..=3,
        cores in 1usize..=2,
        kill_chip_seed in any::<usize>(),
        kill_tick_seed in any::<u64>(),
        which in any::<u8>(),
    ) {
        let sched = any_policy(which);
        let graph = random_sized_dag(&extras, &seeds);

        let mut wave: LacCluster<SizedJob> =
            LacCluster::new(cluster_cfg(chips, cores, SimMode::Wave));
        let wave_run = wave.run_graph(&graph, sched).unwrap();
        let mut event: LacCluster<SizedJob> =
            LacCluster::new(cluster_cfg(chips, cores, SimMode::Event));
        let event_run = event.run_graph(&graph, sched).unwrap();
        prop_assert_eq!(&event_run.outputs, &wave_run.outputs, "modes diverged fault-free");

        // Event-mode accounting closes on every component: busy + idle
        // + stall reconstructs the makespan per core (stall is the
        // all-cores-idle share, identical on every core).
        for chip in 0..chips {
            for core in 0..cores {
                prop_assert_eq!(
                    event_run.stats.per_chip[chip].per_core[core].cycles
                        + event_run.idle_per_core[chip][core]
                        + event_run.stats.transfer_stall_cycles,
                    event_run.stats.makespan_cycles,
                    "chip {} core {}", chip, core
                );
            }
        }

        // A single kill anywhere inside the run changes no bits in
        // either mode.
        let kill_chip = kill_chip_seed % chips;
        let kill_tick = kill_tick_seed % (wave_run.stats.makespan_cycles + 1);
        let plan = FaultPlan::new().kill(kill_chip, kill_tick);
        let mut wave_faulty: LacCluster<SizedJob> =
            LacCluster::new(cluster_cfg(chips, cores, SimMode::Wave))
                .with_fault_plan(plan.clone());
        let wave_killed = wave_faulty.run_graph(&graph, sched).unwrap();
        let mut event_faulty: LacCluster<SizedJob> =
            LacCluster::new(cluster_cfg(chips, cores, SimMode::Event))
                .with_fault_plan(plan.clone());
        let event_killed = event_faulty.run_graph(&graph, sched).unwrap();
        prop_assert_eq!(&wave_killed.outputs, &wave_run.outputs);
        prop_assert_eq!(&event_killed.outputs, &wave_run.outputs,
            "kill(chip {}, tick {}) split the modes", kill_chip, kill_tick);
        if let Err(msg) = check_exactly_once(&event_killed.events, extras.len()) {
            prop_assert!(false, "{}", msg);
        }

        // Warm rerun of the faulted event cluster: bit-identical end to
        // end, clocks and event log included.
        let mut again: LacCluster<SizedJob> =
            LacCluster::new(cluster_cfg(chips, cores, SimMode::Event)).with_fault_plan(plan);
        let rerun = again.run_graph(&graph, sched).unwrap();
        prop_assert_eq!(&rerun.outputs, &event_killed.outputs);
        prop_assert_eq!(&rerun.stats, &event_killed.stats);
        prop_assert_eq!(rerun.events, event_killed.events);
    }

    // The chip and service doors agree with each other and across modes,
    // warm reruns included.
    #[test]
    fn service_and_chip_outputs_are_bit_identical_across_sim_modes(
        extras in prop::collection::vec(0usize..10, 1..12),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        cores in 1usize..=3,
        which in any::<u8>(),
    ) {
        let sched = any_policy(which);
        let mut wave_svc: LacService<SizedJob> =
            LacService::new(ChipConfig::new(cores, LacConfig::default()));
        let base = wave_svc.submit(random_sized_dag(&extras, &seeds), sched).unwrap();

        let event_cfg = ChipConfig::new(cores, LacConfig::default())
            .with_sim_mode(SimMode::Event);
        let mut event_svc: LacService<SizedJob> = LacService::new(event_cfg);
        let ev = event_svc.submit(random_sized_dag(&extras, &seeds), sched).unwrap();
        prop_assert_eq!(&ev.outputs, &base.outputs, "service modes diverged");

        // No links on a single chip: busy + idle alone closes to the
        // makespan in event mode too.
        for core in 0..cores {
            prop_assert_eq!(
                ev.stats.per_core[core].cycles + ev.idle_per_core[core],
                ev.stats.makespan_cycles
            );
        }

        // Warm rerun on the long-lived event-mode service.
        let again = event_svc.submit(random_sized_dag(&extras, &seeds), sched).unwrap();
        prop_assert_eq!(&again.outputs, &ev.outputs, "warm rerun diverged");
        prop_assert_eq!(&again.stats, &ev.stats);

        // The scoped-chip backend in event mode agrees bit for bit.
        let graph = random_sized_dag(&extras, &seeds);
        let mut chip = LacChip::new(event_cfg);
        let chip_run = chip.run_graph(&graph, sched).unwrap();
        prop_assert_eq!(&chip_run.outputs, &ev.outputs);
        prop_assert_eq!(&chip_run.stats, &ev.stats);
    }

    // Multi-tenant rounds: both modes complete every admitted graph with
    // the same bits and drain every tenant's in-flight budget.
    #[test]
    fn tenant_rounds_are_bit_identical_across_sim_modes(
        extras in prop::collection::vec(0usize..8, 2..10),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        which in any::<u8>(),
    ) {
        let sched = any_policy(which);
        let round = |mode: SimMode| {
            let mut svc: LacService<SizedJob> =
                LacService::new(ChipConfig::new(2, LacConfig::default()).with_sim_mode(mode));
            let a = svc.add_tenant(TenantConfig::new("a"));
            let b = svc.add_tenant(TenantConfig::new("b").with_weight(2));
            for t in [a, b, a] {
                svc.enqueue(t, random_sized_dag(&extras, &seeds)).unwrap();
            }
            let round = svc.run_admitted(sched).unwrap();
            let inflight =
                svc.tenant_session(a).inflight_cost + svc.tenant_session(b).inflight_cost;
            (round, inflight)
        };
        let (wave, wave_inflight) = round(SimMode::Wave);
        let (event, event_inflight) = round(SimMode::Event);
        prop_assert_eq!(wave.graphs.len(), event.graphs.len(), "every graph completes");
        for (w, e) in wave.graphs.iter().zip(&event.graphs) {
            prop_assert_eq!(&w.outputs, &e.outputs, "a tenant's bits changed across modes");
            prop_assert_eq!(w.ticket, e.ticket);
        }
        prop_assert_eq!((wave_inflight, event_inflight), (0, 0), "budgets must drain");
    }

    // Layered fan-out/fan-in stages striped over chips: every
    // consecutive-stage edge is a candidate cut edge, and the 200-cycle
    // hop latency dominates the 1..14-cycle compute — the regime the
    // event core exists for. Overlapping those transfers with compute
    // must never lose to the wave barrier.
    #[test]
    fn event_mode_never_loses_to_waves_on_cut_edge_graphs(
        widths in prop::collection::vec(1usize..4, 2..6),
        salt in any::<u64>(),
        which in any::<u8>(),
    ) {
        let sched = any_policy(which);
        let mut g = JobGraph::new();
        let mut prev = Vec::new();
        let mut k = 0u64;
        for &w in &widths {
            let stage: Vec<_> = (0..w)
                .map(|_| {
                    k += 1;
                    let cost = 1 + salt.wrapping_mul(k) % 13;
                    let words = 1 + salt.wrapping_add(k) % 8;
                    g.add_after(
                        SizedJob { extra: (cost % 5) as usize, cost, words },
                        &prev,
                    )
                })
                .collect();
            prev = stage;
        }
        let mut wave: LacCluster<SizedJob> = LacCluster::new(cluster_cfg(2, 2, SimMode::Wave));
        let wave_run = wave.run_graph(&g, sched).unwrap();
        let mut event: LacCluster<SizedJob> = LacCluster::new(cluster_cfg(2, 2, SimMode::Event));
        let event_run = event.run_graph(&g, sched).unwrap();
        prop_assert_eq!(&event_run.outputs, &wave_run.outputs);
        prop_assert!(
            event_run.stats.makespan_cycles <= wave_run.stats.makespan_cycles,
            "event mode lost: {} > {} cycles",
            event_run.stats.makespan_cycles, wave_run.stats.makespan_cycles
        );
    }

    // SimMode::Wave is the compatibility mode: a default-config cluster
    // and an explicit Wave-mode cluster are bit-identical end to end —
    // outputs, stats (clocks included) and the event log.
    #[test]
    fn wave_mode_is_bit_identical_to_the_default_coordinator(
        extras in prop::collection::vec(0usize..10, 2..12),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        chips in 2usize..=3,
        which in any::<u8>(),
    ) {
        let sched = any_policy(which);
        let graph = random_sized_dag(&extras, &seeds);
        let default_cfg =
            ClusterConfig::homogeneous(chips, ChipConfig::new(2, LacConfig::default()));
        let mut default_cluster: LacCluster<SizedJob> = LacCluster::new(default_cfg);
        let default_run = default_cluster.run_graph(&graph, sched).unwrap();
        let mut explicit: LacCluster<SizedJob> =
            LacCluster::new(cluster_cfg(chips, 2, SimMode::Wave));
        let wave_run = explicit.run_graph(&graph, sched).unwrap();
        prop_assert_eq!(&default_run.outputs, &wave_run.outputs);
        prop_assert_eq!(&default_run.stats, &wave_run.stats);
        prop_assert_eq!(&default_run.idle_per_core, &wave_run.idle_per_core);
        prop_assert_eq!(default_run.events, wave_run.events);
    }
}

/// Event-mode spans genuinely overlap on the timeline — a transfer is in
/// flight while endpoint chips compute, which the wave coordinator could
/// never produce — and the Chrome-trace export still parses with
/// `lac-bench`'s own JSON parser, one JSON event per log event.
#[test]
fn event_trace_overlaps_and_still_exports_valid_chrome_json() {
    // Two 1-core chips under the striped partitioner (the stress
    // placement that guarantees cut edges): chip 0 owns a long job,
    // chip 1 finishes a small root early and ships its payload to a
    // chip-0 child. The 200-cycle hop flies *while* chip 0 is still
    // busy — in wave mode the same transfer can only start at the wave
    // barrier, after the long job retires.
    let mut g = JobGraph::new();
    let _heavy = g.add(SizedJob {
        extra: 150,
        cost: 160,
        words: 1,
    });
    let root = g.add(SizedJob {
        extra: 0,
        cost: 8,
        words: 8,
    });
    g.add_after(
        SizedJob {
            extra: 0,
            cost: 8,
            words: 2,
        },
        &[root],
    );
    let mut wave: LacCluster<SizedJob> =
        LacCluster::new(cluster_cfg(2, 1, SimMode::Wave)).with_partitioner(Partitioner::Striped);
    let wave_run = wave.run_graph(&g, Scheduler::CriticalPath).unwrap();
    let mut event: LacCluster<SizedJob> =
        LacCluster::new(cluster_cfg(2, 1, SimMode::Event)).with_partitioner(Partitioner::Striped);
    let run = event.run_graph(&g, Scheduler::CriticalPath).unwrap();
    assert_eq!(run.outputs, wave_run.outputs);
    assert!(
        run.stats.makespan_cycles < wave_run.stats.makespan_cycles,
        "overlap must beat the barrier here: event {} vs wave {}",
        run.stats.makespan_cycles,
        wave_run.stats.makespan_cycles
    );

    // At least one transfer span overlaps a job span.
    let jobs: Vec<(u64, u64)> = run
        .events
        .events()
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::Job {
                start,
                end,
                discarded: false,
                ..
            } => Some((start, end)),
            _ => None,
        })
        .collect();
    let overlapped = run.events.events().iter().any(|e| match *e {
        TraceEvent::Transfer { start, end, .. } => {
            jobs.iter().any(|&(js, je)| js < end && start < je)
        }
        _ => false,
    });
    assert!(overlapped, "no transfer span overlapped a job span");

    // The export is still honest JSON with the trace-viewer essentials.
    let json = run.events.to_chrome_trace();
    let doc = Json::parse(&json).expect("chrome trace with overlapping spans is well-formed");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(
        events.len(),
        run.events.len(),
        "one JSON event per log event"
    );
    for e in events {
        assert!(e.get("ph").is_some() && e.get("ts").is_some() && e.get("pid").is_some());
    }

    // Accounting closes per core even with overlapping spans.
    for chip in 0..2 {
        assert_eq!(
            run.stats.per_chip[chip].per_core[0].cycles
                + run.idle_per_core[chip][0]
                + run.stats.transfer_stall_cycles,
            run.stats.makespan_cycles,
            "chip {chip}"
        );
    }
}
