//! Property tests (vendored proptest) for the multi-chip cluster layer:
//! whatever the DAG shape, chip/core counts, costs, link model and
//! partitioner —
//!
//! * the partitioner places every job on exactly one chip and its
//!   per-chip loads account for every cost hint;
//! * `CostBins` never splits a weakly-connected component (no cut edges
//!   within a component), and the union of chips' jobs is the graph;
//! * every cross-chip edge is charged exactly one transfer, with the
//!   configured `hop + ⌈words/bandwidth⌉` cycle cost, and same-chip edges
//!   are never charged;
//! * an N=1 cluster is bit-identical to the single-chip
//!   `LacChip::run_graph` — outputs, per-core stats, makespan, waves;
//! * reruns are bit-identical, and outputs are partition-independent.

use lap::lac_sim::{
    ChipConfig, ChipJob, ClusterConfig, ExecStats, JobGraph, LacChip, LacCluster, LacConfig,
    LacEngine, Partitioner, Scheduler, SimError,
};
use lap::lac_sim::{ExtOp, ProgramBuilder, Source};
use proptest::prelude::*;

const POLICIES: [Scheduler; 3] = [
    Scheduler::Fifo,
    Scheduler::LeastLoaded,
    Scheduler::CriticalPath,
];

fn policy(which: u8) -> Scheduler {
    POLICIES[which as usize % 3]
}

/// A MAC-and-idle program job with an explicit cost hint and transfer
/// size.
#[derive(Clone)]
struct SizedJob {
    extra: usize,
    cost: u64,
    words: u64,
}

impl ChipJob for SizedJob {
    type Output = ExecStats;

    fn cost_hint(&self) -> u64 {
        self.cost
    }

    fn transfer_words(&self) -> u64 {
        self.words
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<ExecStats, SimError> {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.ext(t, ExtOp::Load { col: 0, addr: 0 });
        b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
        b.idle(cfg.fpu.pipeline_depth + self.extra);
        eng.run_program(&b.build())
    }
}

/// Build a pseudo-random DAG of [`SizedJob`]s: job `j > 0` gets up to two
/// parents drawn from `seeds` (a sentinel leaves some jobs as roots).
fn random_dag(extras: &[usize], seeds: &[u64]) -> (JobGraph<SizedJob>, Vec<(usize, usize)>) {
    let mut graph = JobGraph::new();
    let mut edges = Vec::new();
    let mut ids = Vec::new();
    for (j, &extra) in extras.iter().enumerate() {
        let mut parents = Vec::new();
        if j > 0 {
            for take in 0..2usize {
                let seed = seeds[(2 * j + take) % seeds.len()];
                if !seed.is_multiple_of(3) {
                    let p = (seed as usize) % j;
                    parents.push(ids[p]);
                    edges.push((p, j));
                }
            }
        }
        let id = graph.add_after(
            SizedJob {
                extra,
                cost: 1 + (extra as u64) * 7 % 13,
                words: 1 + (extra as u64) * 11 % 29,
            },
            &parents,
        );
        ids.push(id);
    }
    edges.sort_unstable();
    edges.dedup();
    (graph, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_job_lands_on_exactly_one_chip(
        extras in prop::collection::vec(0usize..12, 1..24),
        seeds in prop::collection::vec(any::<u64>(), 8..9),
        chips in 1usize..=5,
        striped in any::<bool>(),
    ) {
        let (graph, edges) = random_dag(&extras, &seeds);
        let partitioner = if striped { Partitioner::Striped } else { Partitioner::CostBins };
        let part = partitioner.partition(&graph, chips);

        // chip_of is total: one chip per job, all in range.
        prop_assert_eq!(part.chip_of.len(), extras.len());
        prop_assert!(part.chip_of.iter().all(|&c| c < chips));
        // Per-chip loads account for every cost hint exactly once.
        let total: u64 = graph.total_cost();
        prop_assert_eq!(part.chip_cost.iter().sum::<u64>(), total);
        // Recompute each job's cost hint the way random_dag assigns it.
        let costs: Vec<u64> = extras.iter().map(|&e| 1 + (e as u64) * 7 % 13).collect();
        for chip in 0..chips {
            let direct: u64 = (0..costs.len())
                .filter(|&j| part.chip_of[j] == chip)
                .map(|j| costs[j])
                .sum();
            prop_assert_eq!(direct, part.chip_cost[chip], "chip {} load", chip);
        }
        // cut_edges is exactly the set of chip-crossing edges.
        let expect: Vec<(usize, usize)> = edges
            .iter()
            .copied()
            .filter(|&(p, c)| part.chip_of[p] != part.chip_of[c])
            .collect();
        let got: Vec<(usize, usize)> = part
            .cut_edges
            .iter()
            .map(|&(p, c)| (p.index(), c.index()))
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        prop_assert_eq!(got_sorted, expect);
        // CostBins never cuts an edge (components stay whole).
        if !striped {
            prop_assert!(part.cut_edges.is_empty(),
                "CostBins split a component: {:?}", part.cut_edges);
        }
        // Determinism: partitioning twice gives the same answer.
        prop_assert_eq!(part, partitioner.partition(&graph, chips));
    }

    #[test]
    fn cross_chip_edges_are_charged_exactly_once(
        extras in prop::collection::vec(0usize..10, 1..20),
        seeds in prop::collection::vec(any::<u64>(), 8..9),
        chips in 2usize..=4,
        cores in 1usize..=3,
        link_bw in 1u64..=8,
        hop in 0u64..=300,
        which in any::<u8>(),
    ) {
        let (graph, _) = random_dag(&extras, &seeds);
        let cfg = ClusterConfig::homogeneous(chips, ChipConfig::new(cores, LacConfig::default()))
            .with_link(link_bw, hop);
        // Striped partitioning maximizes cut edges — the interesting case.
        let mut cluster: LacCluster<SizedJob> =
            LacCluster::new(cfg).with_partitioner(Partitioner::Striped);
        let run = cluster.run_graph(&graph, policy(which)).unwrap();

        // One transfer per cut edge: same multiset, no duplicates, no
        // same-chip charges.
        let mut charged: Vec<(usize, usize)> = run
            .transfers
            .iter()
            .map(|t| (t.parent.index(), t.child.index()))
            .collect();
        charged.sort_unstable();
        let mut dedup = charged.clone();
        dedup.dedup();
        prop_assert_eq!(&charged, &dedup, "an edge was charged twice");
        let mut cut: Vec<(usize, usize)> = run
            .partition
            .cut_edges
            .iter()
            .map(|&(p, c)| (p.index(), c.index()))
            .collect();
        cut.sort_unstable();
        prop_assert_eq!(charged, cut, "charges != cut edges");
        for t in &run.transfers {
            prop_assert!(t.from_chip != t.to_chip, "same-chip edge charged");
            prop_assert_eq!(t.from_chip, run.partition.chip_of[t.parent.index()]);
            prop_assert_eq!(t.to_chip, run.partition.chip_of[t.child.index()]);
            // The configured price, exactly.
            prop_assert_eq!(t.cycles, hop + t.words.div_ceil(link_bw));
        }
        // Totals are the sums of the log.
        prop_assert_eq!(
            run.stats.transferred_words,
            run.transfers.iter().map(|t| t.words).sum::<u64>()
        );
        prop_assert_eq!(
            run.stats.transfer_cycles,
            run.transfers.iter().map(|t| t.cycles).sum::<u64>()
        );
    }

    #[test]
    fn single_chip_cluster_matches_the_chip_door_bitwise(
        extras in prop::collection::vec(0usize..12, 1..20),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        cores in 1usize..=4,
        which in any::<u8>(),
    ) {
        let sched = policy(which);
        let chip_cfg = ChipConfig::new(cores, LacConfig::default());
        let (graph, _) = random_dag(&extras, &seeds);
        let mut cluster: LacCluster<SizedJob> =
            LacCluster::new(ClusterConfig::homogeneous(1, chip_cfg));
        let via_cluster = cluster.run_graph(&graph, sched).unwrap();
        let (graph, _) = random_dag(&extras, &seeds);
        let mut chip = LacChip::new(chip_cfg);
        let via_chip = chip.run_graph(&graph, sched).unwrap();

        prop_assert_eq!(&via_cluster.outputs, &via_chip.outputs);
        prop_assert_eq!(&via_cluster.stats.per_chip[0].per_core, &via_chip.stats.per_core);
        prop_assert_eq!(
            via_cluster.stats.per_chip[0].jobs_per_core.clone(),
            via_chip.stats.jobs_per_core
        );
        prop_assert_eq!(via_cluster.stats.makespan_cycles, via_chip.stats.makespan_cycles);
        prop_assert_eq!(via_cluster.stats.aggregate, via_chip.stats.aggregate);
        prop_assert_eq!(via_cluster.waves, via_chip.waves);
        prop_assert_eq!(via_cluster.wave_of, via_chip.wave_of);
        prop_assert_eq!(via_cluster.stats.transferred_words, 0);
        prop_assert_eq!(via_cluster.stats.transfer_stall_cycles, 0);
        let cores_only: Vec<usize> =
            via_cluster.assignment.iter().map(|&(_, c)| c).collect();
        prop_assert_eq!(cores_only, via_chip.assignment);
    }

    #[test]
    fn cluster_runs_are_deterministic_and_partition_independent(
        extras in prop::collection::vec(0usize..10, 1..16),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        chips in 1usize..=4,
        cores in 1usize..=3,
        which in any::<u8>(),
    ) {
        let sched = policy(which);
        let cfg = ClusterConfig::homogeneous(chips, ChipConfig::new(cores, LacConfig::default()));
        // Warm rerun on the same cluster: bit-identical everything.
        let mut cluster: LacCluster<SizedJob> = LacCluster::new(cfg.clone());
        let (graph, _) = random_dag(&extras, &seeds);
        let first = cluster.run_graph(&graph, sched).unwrap();
        let second = cluster.run_graph(&graph, sched).unwrap();
        prop_assert_eq!(&first.outputs, &second.outputs);
        prop_assert_eq!(&first.stats, &second.stats);
        prop_assert_eq!(&first.transfers, &second.transfers);
        prop_assert_eq!(&first.partition, &second.partition);
        prop_assert_eq!(first.wave_of, second.wave_of);

        // A different partitioner changes the schedule, never the bits of
        // the outputs.
        let mut striped: LacCluster<SizedJob> =
            LacCluster::new(cfg).with_partitioner(Partitioner::Striped);
        let stripe_run = striped.run_graph(&graph, sched).unwrap();
        prop_assert_eq!(&first.outputs, &stripe_run.outputs,
            "partitioning changed functional results");
    }
}
