//! Property tests (vendored proptest) for deterministic fault injection
//! and the trace door — the failure-drill invariants:
//!
//! * **bits never change**: whatever the DAG, cluster shape and single
//!   `(chip, tick)` kill, outputs are bit-identical to the fault-free
//!   run (and reruns of the faulted cluster are bit-identical too);
//! * **exactly once**: every job retires exactly one non-discarded
//!   execution in the event log — revoked executions are marked
//!   discarded, requeued jobs re-run on a survivor;
//! * **work stays metered**: per-core busy + idle reconstructs the
//!   makespan on every core, dead or alive, and the cluster energy
//!   model's totals still decompose into chips + link exactly;
//! * **tenant accounting survives**: after a faulted multi-tenant round,
//!   every tenant's inflight cost has drained to zero and the round's
//!   completions cover every admitted graph;
//! * **the trace door is honest JSON**: the exported Chrome trace parses
//!   with `lac_bench`'s own parser and carries the fault and requeue
//!   instants, and an open-loop replay over a dying cluster merges round
//!   logs onto one absolute timeline.

mod common;

use common::{check_exactly_once, policy, random_sized_dag, SizedJob};
use lac_bench::json::Json;
use lap::lac_power::ClusterEnergyModel;
use lap::lac_sim::{
    ChipConfig, ClusterConfig, ExecStats, FaultPlan, JobGraph, LacCluster, LacConfig, Scheduler,
    TenantConfig, TraceEvent,
};
use lap::lac_traffic::{run_open_loop, Arrival, ArrivalProcess, ArrivalTrace, OpenLoopConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_chip_loss_never_changes_output_bits(
        extras in prop::collection::vec(0usize..10, 2..20),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        chips in 2usize..=4,
        cores in 1usize..=3,
        kill_chip_seed in any::<usize>(),
        kill_tick_seed in any::<u64>(),
        which in any::<u8>(),
    ) {
        let sched = policy(which);
        let cfg = ClusterConfig::homogeneous(chips, ChipConfig::new(cores, LacConfig::default()));
        let graph = random_sized_dag(&extras, &seeds);

        let mut healthy: LacCluster<SizedJob> = LacCluster::new(cfg.clone());
        let baseline = healthy.run_graph(&graph, sched).unwrap();

        // Any single (chip, tick) kill with the tick anywhere inside the
        // fault-free run: faults fire at wave boundaries, so every tick
        // in `0..=makespan` is guaranteed to land before the run retires.
        let kill_chip = kill_chip_seed % chips;
        let kill_tick = kill_tick_seed % (baseline.stats.makespan_cycles + 1);
        let plan = FaultPlan::new().kill(kill_chip, kill_tick);
        let mut faulty: LacCluster<SizedJob> =
            LacCluster::new(cfg.clone()).with_fault_plan(plan.clone());
        let run = faulty.run_graph(&graph, sched).unwrap();

        prop_assert_eq!(&run.outputs, &baseline.outputs,
            "kill(chip {}, tick {}) changed output bits", kill_chip, kill_tick);
        prop_assert!(faulty.dead_chips()[kill_chip], "the kill must land");
        prop_assert_eq!(faulty.alive_chips(), chips - 1);
        prop_assert_eq!(
            run.events.count(|e| matches!(e, TraceEvent::Fault { .. })), 1);

        // Exactly once, with any revoked executions marked discarded.
        if let Err(msg) = check_exactly_once(&run.events, extras.len()) {
            prop_assert!(false, "{}", msg);
        }

        // Work stays metered: busy + idle is the makespan on every core,
        // including the dead chip's.
        for chip in 0..chips {
            for core in 0..run.idle_per_core[chip].len() {
                prop_assert_eq!(
                    run.stats.per_chip[chip].per_core[core].cycles
                        + run.idle_per_core[chip][core],
                    run.stats.makespan_cycles,
                    "chip {} core {}", chip, core
                );
            }
        }
        // No non-discarded execution lands on the dead chip after the
        // fault's applied tick.
        let fault_tick = run.events.events().iter().find_map(|e| match *e {
            TraceEvent::Fault { tick, .. } => Some(tick),
            _ => None,
        }).unwrap();
        for e in run.events.events() {
            if let TraceEvent::Job { chip, start, discarded, .. } = *e {
                if chip == kill_chip && !discarded {
                    prop_assert!(start < fault_tick,
                        "dead chip retired work after dying");
                }
            }
        }

        // Faulted reruns are themselves bit-identical, end to end.
        let mut again: LacCluster<SizedJob> = LacCluster::new(cfg).with_fault_plan(plan);
        let rerun = again.run_graph(&graph, sched).unwrap();
        prop_assert_eq!(&rerun.outputs, &run.outputs);
        prop_assert_eq!(&rerun.stats, &run.stats);
        prop_assert_eq!(rerun.events, run.events);

        // Energy accounting still decomposes exactly on the faulted run.
        let m = ClusterEnergyModel::lap_default();
        let e = m.summarize(&run.stats);
        prop_assert!((e.total_nj - e.chips_nj - e.link_nj).abs() < 1e-9);
        let direct: f64 = e.per_chip.iter().map(|c| c.total_nj).sum();
        prop_assert!((e.chips_nj - direct).abs() < 1e-9);
    }

    #[test]
    fn tenant_budgets_drain_and_rounds_complete_under_chip_loss(
        extras in prop::collection::vec(0usize..8, 2..12),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        chips in 2usize..=3,
        kill_tick in 0u64..200,
        which in any::<u8>(),
    ) {
        let sched = policy(which);
        let cfg = ClusterConfig::homogeneous(chips, ChipConfig::new(2, LacConfig::default()));
        let build = |fault: Option<FaultPlan>| {
            let mut c: LacCluster<SizedJob> = LacCluster::new(cfg.clone());
            if let Some(p) = fault {
                c.inject_faults(p);
            }
            let a = c.add_tenant(TenantConfig::new("a"));
            let b = c.add_tenant(TenantConfig::new("b").with_weight(2));
            for (i, t) in [a, b, a].into_iter().enumerate() {
                let g = random_sized_dag(&extras, &seeds[i % seeds.len()..]
                    .iter().copied().chain(seeds.iter().copied()).take(seeds.len())
                    .collect::<Vec<_>>());
                c.enqueue(t, g).unwrap();
            }
            (c, [a, b])
        };
        let (mut healthy, _) = build(None);
        let base = healthy.run_admitted(sched).unwrap();

        let (mut faulty, ids) = build(Some(FaultPlan::new().kill(chips - 1, kill_tick)));
        let round = faulty.run_admitted(sched).unwrap();

        prop_assert_eq!(round.graphs.len(), base.graphs.len(), "every graph completes");
        for (b, f) in base.graphs.iter().zip(&round.graphs) {
            prop_assert_eq!(&b.outputs, &f.outputs, "chip loss changed a tenant's bits");
            prop_assert_eq!(b.ticket, f.ticket);
        }
        for t in ids {
            prop_assert_eq!(faulty.tenant_session(t).inflight_cost, 0,
                "tenant budget must drain after a faulted round");
        }
        // Revoked executions stay metered to the tenant that ran them:
        // job counts cover every job once plus one per discarded
        // execution, and tenant-metered busy cycles reconstruct the
        // cluster aggregate exactly.
        let discarded = round.events.count(|e| matches!(
            e, TraceEvent::Job { discarded: true, .. }));
        let total_jobs = 3 * extras.len() as u64;
        prop_assert_eq!(
            ids.iter().map(|&t| faulty.tenant_session(t).jobs_run).sum::<u64>(),
            total_jobs + discarded as u64
        );
        let tenant_busy: u64 = ids.iter()
            .map(|&t| faulty.tenant_session(t).busy.cycles)
            .sum();
        prop_assert_eq!(tenant_busy, round.stats.aggregate.cycles);
    }
}

/// The Chrome-trace export is real JSON (parsed by `lac-bench`'s own
/// parser, no serde in the build) and carries the drill's fault and
/// requeue instants.
#[test]
fn chrome_trace_parses_and_records_the_drill() {
    let cfg = ClusterConfig::homogeneous(3, ChipConfig::new(2, LacConfig::default()));
    // Wide diamonds: every chip owns work in every wave, so the tick-1
    // kill is guaranteed to catch chip 1 with jobs to revoke and requeue.
    let graph = {
        let mut g = JobGraph::new();
        for k in 0..8usize {
            let job = |c: u64| SizedJob {
                extra: k % 5,
                cost: c,
                words: 2 + k as u64 % 5,
            };
            let a = g.add(job(4));
            let b = g.add_after(job(2), &[a]);
            let c = g.add_after(job(3), &[a]);
            g.add_after(job(1), &[b, c]);
        }
        g
    };
    let mut cluster: LacCluster<SizedJob> =
        LacCluster::new(cfg).with_fault_plan(FaultPlan::new().kill(1, 1));
    let run = cluster.run_graph(&graph, Scheduler::CriticalPath).unwrap();
    assert!(
        run.events
            .count(|e| matches!(e, TraceEvent::Requeue { .. }))
            > 0,
        "the tick-1 kill must catch in-flight work"
    );

    let json = run.events.to_chrome_trace();
    let doc = Json::parse(&json).expect("chrome trace is well-formed JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(
        events.len(),
        run.events.len(),
        "one JSON event per log event"
    );
    let cat_count = |cat: &str| {
        events
            .iter()
            .filter(|e| e.get("cat").and_then(|v| v.as_str()) == Some(cat))
            .count()
    };
    assert_eq!(
        cat_count("fault"),
        run.events.count(|e| matches!(e, TraceEvent::Fault { .. }))
    );
    assert!(cat_count("fault") > 0, "fault instant exported");
    assert!(cat_count("requeue") > 0, "requeue instants exported");
    assert_eq!(
        cat_count("job"),
        run.events.count(|e| matches!(e, TraceEvent::Job { .. }))
    );
    // Every event has the trace-viewer essentials.
    for e in events {
        assert!(e.get("ph").is_some() && e.get("ts").is_some() && e.get("pid").is_some());
    }
}

/// An open-loop replay over a cluster that loses a chip mid-trace: every
/// arrival is still served with bit-identical outputs, and the merged
/// event log carries the fault on the absolute session clock.
#[test]
fn open_loop_replay_survives_chip_loss_with_identical_bits() {
    let request = |a: &Arrival| -> JobGraph<SizedJob> {
        let mut g = JobGraph::new();
        let salt = (a.index as usize + a.tenant) % 4;
        let first = g.add(SizedJob {
            extra: salt,
            cost: 40,
            words: 3,
        });
        g.add_after(
            SizedJob {
                extra: salt + 1,
                cost: 30,
                words: 2,
            },
            &[first],
        );
        g
    };
    let trace = ArrivalTrace::generate(11, 30_000, &[ArrivalProcess::Poisson { mean_gap: 400.0 }]);
    let replay = |fault: Option<FaultPlan>| {
        let mut cluster: LacCluster<SizedJob> = LacCluster::new(ClusterConfig::homogeneous(
            2,
            ChipConfig::new(1, LacConfig::default()),
        ));
        if let Some(p) = fault {
            cluster.inject_faults(p);
        }
        let ids = vec![cluster.add_tenant(TenantConfig::new("t"))];
        let report = run_open_loop(
            &mut cluster,
            &trace,
            &ids,
            request,
            OpenLoopConfig::default(),
        )
        .expect("replay survives the kill");
        (report, cluster)
    };
    let (healthy, _) = replay(None);
    // Kill chip 1 roughly mid-trace on the session clock.
    let (faulted, cluster) = replay(Some(FaultPlan::new().kill(1, 15_000)));

    assert!(cluster.dead_chips()[1]);
    assert_eq!(faulted.completed.len(), trace.len(), "every arrival served");
    let outs = |r: &lap::lac_traffic::OpenLoopReport<ExecStats>| {
        let mut v: Vec<_> = r
            .completed
            .iter()
            .map(|c| (c.arrival, c.outputs.clone()))
            .collect();
        v.sort_by_key(|(a, _)| (a.tenant, a.index));
        v
    };
    assert_eq!(
        outs(&healthy),
        outs(&faulted),
        "chip loss changed replay bits"
    );

    // The merged log records the fault once, at or after the scheduled
    // session tick (the next wave boundary), and parses as Chrome trace.
    let fault_ticks: Vec<u64> = faulted
        .events
        .events()
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::Fault { chip, tick } => {
                assert_eq!(chip, 1);
                Some(tick)
            }
            _ => None,
        })
        .collect();
    assert_eq!(fault_ticks.len(), 1, "one kill, one fault event");
    assert!(
        fault_ticks[0] >= 15_000,
        "fault applies at a wave boundary >= its tick"
    );
    Json::parse(&faulted.events.to_chrome_trace()).expect("merged trace is well-formed JSON");
}
