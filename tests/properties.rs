//! Property-based tests (proptest) on the core invariants: the reference
//! substrate's algebraic identities, the simulator's agreement with it, and
//! the FPU models' numeric contracts.

use lap::lac_fpu::{magnitude_max_index, recip_newton_raphson, ExtendedAccumulator};
use lap::lac_kernels::{Details, GemmWorkload, Workload};
use lap::lac_sim::LacEngine;
use lap::linalg_ref::{
    blas1, gemm, gemm_blocked, gemm_naive, max_abs_diff, trmm, trsm, BlockSizes, Matrix, Side,
    Transpose, Triangle,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = (usize, usize, u64)> {
    (1..=max_dim, 1..=max_dim, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_gemm_equals_naive((m, k, seed) in matrix_strategy(24), n in 1usize..=24,
                                 mc in 1usize..=16, kc in 1usize..=16, nr in 1usize..=8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let mut c1 = Matrix::random(m, n, &mut rng);
        let mut c2 = c1.clone();
        gemm(&a, &b, &mut c1);
        gemm_blocked(&a, &b, &mut c2, BlockSizes { mc, kc, nr });
        prop_assert!(max_abs_diff(&c1, &c2) < 1e-10);
    }

    #[test]
    fn gemm_transpose_identity((m, k, seed) in matrix_strategy(12), n in 1usize..=12) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let mut ab = Matrix::zeros(m, n);
        gemm(&a, &b, &mut ab);
        let mut btat = Matrix::zeros(n, m);
        gemm_naive(1.0, &b, Transpose::Yes, &a, Transpose::Yes, 0.0, &mut btat);
        prop_assert!(max_abs_diff(&ab.transpose(), &btat) < 1e-10);
    }

    #[test]
    fn trsm_inverts_trmm(n in 1usize..=12, w in 1usize..=12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = Matrix::random_lower_triangular(n, &mut rng);
        let x0 = Matrix::random(n, w, &mut rng);
        let mut b = x0.clone();
        trmm(Side::Left, Triangle::Lower, &l, &mut b);
        trsm(Side::Left, Triangle::Lower, &l, &mut b);
        prop_assert!(max_abs_diff(&b, &x0) < 1e-8);
    }

    #[test]
    fn nrm2_scale_invariance(seed in any::<u64>(), len in 1usize..=64, scale in -20i32..=20) {
        // ‖αx‖ = |α|·‖x‖ for power-of-two α (exact in binary FP).
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..len).map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0)).collect();
        let alpha = 2f64.powi(scale);
        let scaled: Vec<f64> = x.iter().map(|v| v * alpha).collect();
        let n1 = blas1::nrm2(&scaled);
        let n2 = alpha.abs() * blas1::nrm2(&x);
        if n2 != 0.0 {
            prop_assert!((n1 / n2 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn comparator_matches_iamax(xs in prop::collection::vec(-1e10f64..1e10, 1..50)) {
        prop_assert_eq!(magnitude_max_index(&xs), blas1::iamax(&xs));
    }

    #[test]
    fn recip_accuracy_everywhere(mant in 1.0f64..2.0, exp in -300i32..300) {
        let x = mant * 2f64.powi(exp);
        let y = recip_newton_raphson(x, 3);
        let ulps = (y.to_bits() as i64 - (1.0 / x).to_bits() as i64).abs();
        prop_assert!(ulps <= 8, "x={x}, ulps={ulps}");
    }

    #[test]
    fn extended_accumulator_matches_f64_in_range(
        vals in prop::collection::vec((-1e10f64..1e10, -1e10f64..1e10), 1..40)
    ) {
        let mut acc = ExtendedAccumulator::new();
        let mut reference = 0.0f64;
        for (a, b) in &vals {
            acc.mac(*a, *b);
            reference += a * b;
        }
        let got = acc.normalize();
        // The wide accumulator is *more* accurate; compare loosely.
        let tol = 1e-6 * vals.iter().map(|(a, b)| (a * b).abs()).sum::<f64>().max(1.0);
        prop_assert!((got - reference).abs() <= tol, "{got} vs {reference}");
    }

    #[test]
    fn simulated_gemm_matches_reference(seed in any::<u64>(), bm in 1usize..=4,
                                        bk in 1usize..=4, bn in 1usize..=4) {
        // Random multiples of nr=4 in every dimension.
        let (m, k, n) = (4 * bm, 4 * bk.max(2), 4 * bn);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let c0 = Matrix::random(m, n, &mut rng);
        let mut eng = LacEngine::builder().build();
        let report = GemmWorkload::new(a.clone(), b.clone(), c0.clone()).run(&mut eng).unwrap();
        let Details::Gemm { c } = report.details else { panic!("gemm reports C") };
        let mut expect = c0;
        gemm(&a, &b, &mut expect);
        prop_assert!(max_abs_diff(&c, &expect) < 1e-10);
    }
}
