//! Shared helpers for the integration property suites: the policy
//! tables, the pseudo-random DAG generators, the instrumented job types
//! they hang off, and the linalg-ref-backed QP workload constructor.
//!
//! Each test binary that declares `mod common;` compiles its own copy,
//! so any one suite uses only a subset — hence the file-wide
//! `dead_code` allowance.
#![allow(dead_code)]

use lap::lac_kernels::{IppmmParams, IppmmWorkload};
use lap::lac_sim::{
    ChipJob, EventLog, ExecStats, JobGraph, LacConfig, LacEngine, ProgramJob, Scheduler, SimError,
    TraceEvent,
};
use lap::lac_sim::{ExtOp, ProgramBuilder, Source};
use std::sync::{Arc, Mutex};

/// The full-dispatch policies (every wave drains the ready set — what the
/// wave-planning work-conservation shape assumes). The quantum-capped
/// `FairShare` joins [`ALL_POLICIES`] for the policy-independent
/// invariants; its own planner properties live in
/// `tests/service_props.rs`.
pub const POLICIES: [Scheduler; 3] = [
    Scheduler::Fifo,
    Scheduler::LeastLoaded,
    Scheduler::CriticalPath,
];

/// Every scheduling policy, `FairShare` included — the sweep for
/// "outputs are policy-independent" properties.
pub const ALL_POLICIES: [Scheduler; 4] = [
    Scheduler::Fifo,
    Scheduler::LeastLoaded,
    Scheduler::CriticalPath,
    Scheduler::FairShare,
];

/// Pick a full-dispatch policy from an arbitrary byte.
pub fn policy(which: u8) -> Scheduler {
    POLICIES[which as usize % POLICIES.len()]
}

/// Pick any policy (FairShare included) from an arbitrary byte.
pub fn any_policy(which: u8) -> Scheduler {
    ALL_POLICIES[which as usize % ALL_POLICIES.len()]
}

/// A one-MAC program padded with `extra` idle cycles — the minimal real
/// job whose cost scales with its argument.
pub fn mac_job(extra: usize) -> ProgramJob {
    let cfg = LacConfig::default();
    let mut b = ProgramBuilder::new(cfg.nr);
    let t = b.push_step();
    b.ext(t, ExtOp::Load { col: 0, addr: 0 });
    b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
    let t = b.push_step();
    b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
    b.idle(cfg.fpu.pipeline_depth + extra);
    ProgramJob::new(b.build())
}

/// A job that appends its id to a shared log when it runs — the probe for
/// the parents-run-first invariant. (Same-wave log order is host-timing
/// dependent; parent→child pairs never share a wave, so their relative
/// order is not.)
pub struct LogJob {
    pub id: usize,
    pub inner: ProgramJob,
    pub log: Arc<Mutex<Vec<usize>>>,
}

impl ChipJob for LogJob {
    type Output = ExecStats;

    fn cost_hint(&self) -> u64 {
        self.inner.cost_hint()
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<ExecStats, SimError> {
        let out = self.inner.run_on(eng)?;
        self.log.lock().unwrap().push(self.id);
        Ok(out)
    }
}

/// Build a pseudo-random DAG of [`LogJob`]s: job `j > 0` gets up to two
/// parents drawn from `seeds` (values index earlier jobs; a sentinel
/// leaves some jobs as roots). Returns the graph, its edges, and the
/// shared log.
#[allow(clippy::type_complexity)]
pub fn random_log_dag(
    extras: &[usize],
    seeds: &[u64],
) -> (
    JobGraph<LogJob>,
    Vec<(usize, usize)>,
    Arc<Mutex<Vec<usize>>>,
) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut graph = JobGraph::new();
    let mut edges = Vec::new();
    let mut ids = Vec::new();
    for (j, &extra) in extras.iter().enumerate() {
        let mut parents = Vec::new();
        if j > 0 {
            for take in 0..2usize {
                let seed = seeds[(2 * j + take) % seeds.len()];
                // ~1 in 3 candidate slots stays empty, keeping a mix of
                // roots, chains and joins.
                if !seed.is_multiple_of(3) {
                    let p = (seed as usize) % j;
                    parents.push(ids[p]);
                    edges.push((p, j));
                }
            }
        }
        let id = graph.add_after(
            LogJob {
                id: j,
                inner: mac_job(extra),
                log: Arc::clone(&log),
            },
            &parents,
        );
        assert_eq!(id.index(), j);
        ids.push(id);
    }
    edges.sort_unstable();
    edges.dedup();
    (graph, edges, log)
}

/// A MAC-and-idle program job with an explicit cost hint and transfer
/// size (the shape the cluster and fault property tests use).
#[derive(Clone)]
pub struct SizedJob {
    pub extra: usize,
    pub cost: u64,
    pub words: u64,
}

impl ChipJob for SizedJob {
    type Output = ExecStats;

    fn cost_hint(&self) -> u64 {
        self.cost
    }

    fn transfer_words(&self) -> u64 {
        self.words
    }

    fn run_on(&self, eng: &mut LacEngine) -> Result<ExecStats, SimError> {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        let t = b.push_step();
        b.ext(t, ExtOp::Load { col: 0, addr: 0 });
        b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
        let t = b.push_step();
        b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
        b.idle(cfg.fpu.pipeline_depth + self.extra);
        eng.run_program(&b.build())
    }
}

/// Build a pseudo-random DAG of [`SizedJob`]s: job `j > 0` gets up to two
/// parents drawn from `seeds` (a sentinel leaves some jobs as roots).
pub fn random_sized_dag(extras: &[usize], seeds: &[u64]) -> JobGraph<SizedJob> {
    let mut graph = JobGraph::new();
    let mut ids = Vec::new();
    for (j, &extra) in extras.iter().enumerate() {
        let mut parents = Vec::new();
        if j > 0 {
            for take in 0..2usize {
                let seed = seeds[(2 * j + take) % seeds.len()];
                if !seed.is_multiple_of(3) {
                    parents.push(ids[(seed as usize) % j]);
                }
            }
        }
        parents.dedup();
        let id = graph.add_after(
            SizedJob {
                extra,
                cost: 1 + (extra as u64) * 7 % 13,
                words: 1 + (extra as u64) * 11 % 29,
            },
            &parents,
        );
        ids.push(id);
    }
    graph
}

/// Exactly-once over an event log: every job has exactly one
/// non-discarded execution; the count of discarded ones comes back.
pub fn check_exactly_once(events: &EventLog, n: usize) -> Result<usize, String> {
    let mut retired = vec![0usize; n];
    let mut discarded = 0usize;
    for e in events.events() {
        if let TraceEvent::Job {
            job, discarded: d, ..
        } = *e
        {
            if d {
                discarded += 1;
            } else {
                retired[job] += 1;
            }
        }
    }
    for (j, &r) in retired.iter().enumerate() {
        if r != 1 {
            return Err(format!("job {j} retired {r} times"));
        }
    }
    Ok(discarded)
}

/// A small-but-real interior-point solve whose correctness is checked
/// against `linalg-ref` residuals: every segment is one IPM iteration
/// (factor → solve → schur → step) on the device.
pub fn qp(salt: u64) -> IppmmWorkload {
    IppmmWorkload::new(IppmmParams {
        n: 8,
        m: 4,
        salt,
        ..IppmmParams::default()
    })
}
