//! Property tests (vendored proptest) for the chip scheduler invariants:
//! whatever the queue, core count, costs, and policy —
//!
//! * every job is assigned, and runs, exactly once;
//! * `ChipStats` aggregate counters equal the sum of the per-core stats;
//! * the makespan equals the busiest core's cycles and bounds every core;
//! * the least-loaded policy's imbalance is bounded by the largest job.

use lap::lac_sim::{ChipConfig, ChipStats, ExecStats, LacChip, LacConfig, ProgramJob, Scheduler};
use lap::lac_sim::{ExtOp, ProgramBuilder, Source};
use proptest::prelude::*;

fn policy(least_loaded: bool) -> Scheduler {
    if least_loaded {
        Scheduler::LeastLoaded
    } else {
        Scheduler::Fifo
    }
}

/// A tiny program: one external load + one MAC + `extra` idle cycles, so
/// per-job cycles and event counts are known in closed form.
fn mac_job(extra: usize) -> ProgramJob {
    let cfg = LacConfig::default();
    let mut b = ProgramBuilder::new(cfg.nr);
    let t = b.push_step();
    b.ext(t, ExtOp::Load { col: 0, addr: 0 });
    b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
    let t = b.push_step();
    b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
    b.idle(cfg.fpu.pipeline_depth + extra);
    ProgramJob::new(b.build())
}

fn sum_per_core(stats: &ChipStats) -> ExecStats {
    let mut sum = ExecStats::default();
    for s in &stats.per_core {
        sum.merge(s);
    }
    sum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn assignment_is_total_and_in_range(
        costs in prop::collection::vec(0u64..1000, 0..64),
        cores in 1usize..=12,
        least_loaded in any::<bool>(),
    ) {
        let assign = policy(least_loaded).assign(&costs, cores);
        prop_assert_eq!(assign.len(), costs.len(), "every job placed exactly once");
        prop_assert!(assign.iter().all(|&c| c < cores), "cores in range");
    }

    #[test]
    fn fifo_is_round_robin(costs in prop::collection::vec(0u64..1000, 0..64),
                           cores in 1usize..=12) {
        let assign = Scheduler::Fifo.assign(&costs, cores);
        for (j, &c) in assign.iter().enumerate() {
            prop_assert_eq!(c, j % cores);
        }
    }

    #[test]
    fn least_loaded_imbalance_bounded_by_largest_job(
        costs in prop::collection::vec(1u64..1000, 1..64),
        cores in 1usize..=12,
    ) {
        let assign = Scheduler::LeastLoaded.assign(&costs, cores);
        let mut load = vec![0u64; cores];
        for (j, &c) in assign.iter().enumerate() {
            load[c] += costs[j];
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        let biggest = *costs.iter().max().unwrap();
        // Greedy list scheduling: a core only receives a job while it is a
        // minimum, so no core ends more than one job above another unless
        // the queue ran out (min may stay 0 with fewer jobs than cores).
        prop_assert!(
            max - min <= biggest,
            "imbalance {} exceeds largest job {biggest}",
            max - min
        );
    }

    #[test]
    fn chip_totals_equal_sum_of_cores(
        extras in prop::collection::vec(0usize..24, 1..24),
        cores in 1usize..=6,
        least_loaded in any::<bool>(),
    ) {
        let jobs: Vec<ProgramJob> = extras.iter().map(|&e| mac_job(e)).collect();
        let mut chip = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
        let run = chip.run_queue(&jobs, policy(least_loaded)).unwrap();

        // Every job ran exactly once…
        prop_assert_eq!(run.outputs.len(), jobs.len());
        prop_assert_eq!(run.stats.jobs(), jobs.len() as u64);
        prop_assert_eq!(
            run.stats.jobs_per_core.iter().sum::<u64>(),
            jobs.len() as u64
        );
        // …and each issued exactly one MAC.
        prop_assert_eq!(run.stats.aggregate.mac_ops, jobs.len() as u64);

        // Aggregate equals the per-core sum, counter for counter.
        prop_assert_eq!(sum_per_core(&run.stats), run.stats.aggregate);

        // Makespan is the busiest core, and bounds every core.
        let busiest = run.stats.per_core.iter().map(|s| s.cycles).max().unwrap();
        prop_assert_eq!(run.stats.makespan_cycles, busiest);
        for s in &run.stats.per_core {
            prop_assert!(s.cycles <= run.stats.makespan_cycles);
        }

        // Per-job outputs carry the exact per-job cycle counts: job j runs
        // 2 + pipeline + extra cycles regardless of placement.
        let p = LacConfig::default().fpu.pipeline_depth as u64;
        for (out, &extra) in run.outputs.iter().zip(&extras) {
            prop_assert_eq!(out.cycles, 2 + p + extra as u64);
        }
    }

    #[test]
    fn shard_sessions_accumulate_across_queue_runs(
        extras in prop::collection::vec(0usize..8, 1..12),
        cores in 1usize..=4,
    ) {
        let jobs: Vec<ProgramJob> = extras.iter().map(|&e| mac_job(e)).collect();
        let mut chip = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
        let first = chip.run_queue(&jobs, Scheduler::Fifo).unwrap();
        let second = chip.run_queue(&jobs, Scheduler::Fifo).unwrap();
        // Same queue, same placement, same per-run stats…
        prop_assert_eq!(&first.stats, &second.stats);
        // …while the shard sessions keep the running total of both runs.
        let session_total: u64 = (0..chip.num_cores())
            .map(|i| chip.shard(i).cycles())
            .sum();
        prop_assert_eq!(session_total, 2 * first.stats.aggregate.cycles);
    }
}
