//! Property tests (vendored proptest) for the flat-queue scheduler
//! invariants: whatever the queue, core count, costs, and policy —
//!
//! * every job is assigned, and runs, exactly once;
//! * `ChipStats` aggregate counters equal the sum of the per-core stats;
//! * a flat graph's makespan equals the busiest core's cycles and bounds
//!   every core;
//! * the load-aware policies' imbalance is bounded by the largest job.
//!
//! Graph-shaped invariants (dependency ordering, wave structure, the
//! critical-path policy) live in `tests/graph_props.rs`.

use lap::lac_sim::{
    ChipConfig, ChipStats, ExecStats, JobGraph, LacChip, LacConfig, ProgramJob, Scheduler,
};
use lap::lac_sim::{ExtOp, ProgramBuilder, Source};
use proptest::prelude::*;

fn policy(which: u8) -> Scheduler {
    match which % 3 {
        0 => Scheduler::Fifo,
        1 => Scheduler::LeastLoaded,
        _ => Scheduler::CriticalPath,
    }
}

/// A tiny program: one external load + one MAC + `extra` idle cycles, so
/// per-job cycles and event counts are known in closed form.
fn mac_job(extra: usize) -> ProgramJob {
    let cfg = LacConfig::default();
    let mut b = ProgramBuilder::new(cfg.nr);
    let t = b.push_step();
    b.ext(t, ExtOp::Load { col: 0, addr: 0 });
    b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
    let t = b.push_step();
    b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
    b.idle(cfg.fpu.pipeline_depth + extra);
    ProgramJob::new(b.build())
}

fn sum_per_core(stats: &ChipStats) -> ExecStats {
    let mut sum = ExecStats::default();
    for s in &stats.per_core {
        sum.merge(s);
    }
    sum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn assignment_is_total_and_in_range(
        costs in prop::collection::vec(0u64..1000, 0..64),
        cores in 1usize..=12,
        which in any::<u8>(),
    ) {
        // All four policies, including the quantum-capped FairShare whose
        // assign() loops waves until the queue drains.
        let sched = match which % 4 {
            0 => Scheduler::Fifo,
            1 => Scheduler::LeastLoaded,
            2 => Scheduler::CriticalPath,
            _ => Scheduler::FairShare,
        };
        let assign = sched.assign(&costs, cores);
        prop_assert_eq!(assign.len(), costs.len(), "every job placed exactly once");
        prop_assert!(assign.iter().all(|&c| c < cores), "cores in range");
    }

    #[test]
    fn fifo_is_round_robin(costs in prop::collection::vec(0u64..1000, 0..64),
                           cores in 1usize..=12) {
        let assign = Scheduler::Fifo.assign(&costs, cores);
        for (j, &c) in assign.iter().enumerate() {
            prop_assert_eq!(c, j % cores);
        }
    }

    #[test]
    fn load_aware_imbalance_bounded_by_largest_job(
        costs in prop::collection::vec(1u64..1000, 1..64),
        cores in 1usize..=12,
        critical_path in any::<bool>(),
    ) {
        let sched = if critical_path { Scheduler::CriticalPath } else { Scheduler::LeastLoaded };
        let assign = sched.assign(&costs, cores);
        let mut load = vec![0u64; cores];
        for (j, &c) in assign.iter().enumerate() {
            load[c] += costs[j];
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        let biggest = *costs.iter().max().unwrap();
        // Greedy list scheduling: a core only receives a job while it is a
        // minimum, so no core ends more than one job above another unless
        // the queue ran out (min may stay 0 with fewer jobs than cores).
        prop_assert!(
            max - min <= biggest,
            "{sched:?}: imbalance {} exceeds largest job {biggest}",
            max - min
        );
    }

    #[test]
    fn chip_totals_equal_sum_of_cores(
        extras in prop::collection::vec(0usize..24, 1..24),
        cores in 1usize..=6,
        which in any::<u8>(),
    ) {
        let graph: JobGraph<ProgramJob> = extras.iter().map(|&e| mac_job(e)).collect();
        let mut chip = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
        let run = chip.run_graph(&graph, policy(which)).unwrap();

        // Every job ran exactly once…
        prop_assert_eq!(run.outputs.len(), extras.len());
        prop_assert_eq!(run.stats.jobs(), extras.len() as u64);
        prop_assert_eq!(
            run.stats.jobs_per_core.iter().sum::<u64>(),
            extras.len() as u64
        );
        // …and each issued exactly one MAC.
        prop_assert_eq!(run.stats.aggregate.mac_ops, extras.len() as u64);

        // Aggregate equals the per-core sum, counter for counter.
        prop_assert_eq!(sum_per_core(&run.stats), run.stats.aggregate);

        // A flat graph is one wave: makespan is the busiest core, bounds
        // every core, and busy + idle reconstructs it per core.
        prop_assert_eq!(run.waves, 1);
        let busiest = run.stats.per_core.iter().map(|s| s.cycles).max().unwrap();
        prop_assert_eq!(run.stats.makespan_cycles, busiest);
        for (core, s) in run.stats.per_core.iter().enumerate() {
            prop_assert!(s.cycles <= run.stats.makespan_cycles);
            prop_assert_eq!(
                s.cycles + run.idle_per_core[core],
                run.stats.makespan_cycles
            );
        }

        // Per-job outputs carry the exact per-job cycle counts: job j runs
        // 2 + pipeline + extra cycles regardless of placement.
        let p = LacConfig::default().fpu.pipeline_depth as u64;
        for (out, &extra) in run.outputs.iter().zip(&extras) {
            prop_assert_eq!(out.cycles, 2 + p + extra as u64);
        }
    }

    #[test]
    fn shard_sessions_accumulate_across_graph_runs(
        extras in prop::collection::vec(0usize..8, 1..12),
        cores in 1usize..=4,
    ) {
        let graph: JobGraph<ProgramJob> = extras.iter().map(|&e| mac_job(e)).collect();
        let mut chip = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
        let first = chip.run_graph(&graph, Scheduler::Fifo).unwrap();
        let second = chip.run_graph(&graph, Scheduler::Fifo).unwrap();
        // Same graph, same placement, same per-run stats…
        prop_assert_eq!(&first.stats, &second.stats);
        // …while the shard sessions keep the running total of both runs.
        let session_total: u64 = (0..chip.num_cores())
            .map(|i| chip.shard(i).cycles())
            .sum();
        prop_assert_eq!(session_total, 2 * first.stats.aggregate.cycles);
    }
}
