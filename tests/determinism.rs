//! Determinism guarantees: the simulator is a pure function of
//! (configuration, program, operands). Running the same workload twice on
//! fresh engines — or through a multi-core `LacChip`/`LacService` graph
//! under any scheduler policy — must reproduce bit-identical functional
//! outputs and identical cycle counts. Placement and host-thread
//! interleaving must never leak into results.

use lap::lac_kernels::{
    registry, registry_chip_config, registry_sized, KernelReport, ProblemSize, SolverLoopWorkload,
    Workload,
};
use lap::lac_sim::{ChipConfig, JobGraph, LacChip, LacConfig, LacEngine, LacService, Scheduler};

const POLICIES: [Scheduler; 3] = [
    Scheduler::Fifo,
    Scheduler::LeastLoaded,
    Scheduler::CriticalPath,
];

fn run_fresh(w: &dyn Workload) -> KernelReport {
    let mut eng = LacEngine::builder()
        .config(w.config(LacConfig::default()))
        .build();
    w.run(&mut eng)
        .unwrap_or_else(|e| panic!("{}: {e:?}", w.name()))
}

fn registry_graph(size: ProblemSize) -> JobGraph<Box<dyn Workload>> {
    registry_sized(size).into_iter().collect()
}

#[test]
fn every_workload_is_bit_deterministic_on_fresh_engines() {
    for w in registry() {
        let first = run_fresh(w.as_ref());
        let second = run_fresh(w.as_ref());
        // KernelReport's PartialEq covers the Details payload (f64 compare
        // is bitwise-exact here: equal bit patterns compare equal) and the
        // full ExecStats counter set.
        assert_eq!(first, second, "{}: reruns diverged", w.name());
        assert_eq!(first.stats.cycles, second.stats.cycles);
    }
}

#[test]
fn chip_graph_runs_are_deterministic_under_every_policy() {
    let cfg = ChipConfig::new(3, registry_chip_config(LacConfig::default()));
    for sched in POLICIES {
        let mut chip_a = LacChip::new(cfg);
        let mut chip_b = LacChip::new(cfg);
        let run_a = chip_a
            .run_graph(&registry_graph(ProblemSize::Medium), sched)
            .unwrap();
        let run_b = chip_b
            .run_graph(&registry_graph(ProblemSize::Medium), sched)
            .unwrap();
        assert_eq!(run_a.assignment, run_b.assignment, "{sched:?}: placement");
        assert_eq!(run_a.outputs, run_b.outputs, "{sched:?}: outputs");
        assert_eq!(run_a.stats, run_b.stats, "{sched:?}: chip stats");
        assert_eq!(run_a.waves, run_b.waves, "{sched:?}: waves");
        assert_eq!(run_a.idle_per_core, run_b.idle_per_core, "{sched:?}: idle");
    }
}

#[test]
fn scheduler_policy_changes_placement_but_not_results() {
    // The registry's cost hints differ wildly across kernels, so the
    // policies place jobs differently — yet every per-job report,
    // including cycle counts, must be identical (cores are identical and
    // job state never leaks across a graph run's jobs on fresh shards).
    let cfg = ChipConfig::new(4, registry_chip_config(LacConfig::default()));
    let runs: Vec<_> = POLICIES
        .iter()
        .map(|&sched| {
            LacChip::new(cfg)
                .run_graph(&registry_graph(ProblemSize::Medium), sched)
                .unwrap()
        })
        .collect();
    assert_ne!(
        runs[0].assignment, runs[1].assignment,
        "policies should disagree on this queue (costs are uneven)"
    );
    for run in &runs[1..] {
        assert_eq!(runs[0].outputs, run.outputs, "results depend on placement");
        // Chip-level aggregates are placement-independent too (sums
        // commute), as is the wave structure (readiness is policy-free).
        assert_eq!(runs[0].stats.aggregate, run.stats.aggregate);
        assert_eq!(runs[0].waves, run.waves);
    }
}

#[test]
fn engine_and_chip_shard_agree_per_workload() {
    // A 1-core chip is just an engine with a graph in front: identical
    // reports for the whole registry run back-to-back.
    let shared = registry_chip_config(LacConfig::default());
    let jobs = registry();
    let mut eng = LacEngine::builder().config(shared).build();
    let direct: Vec<KernelReport> = jobs
        .iter()
        .map(|w| {
            w.run(&mut eng)
                .unwrap_or_else(|e| panic!("{}: {e:?}", w.name()))
        })
        .collect();
    let graph: JobGraph<Box<dyn Workload>> = registry().into_iter().collect();
    let chip_run = LacChip::new(ChipConfig::new(1, shared))
        .run_graph(&graph, Scheduler::Fifo)
        .unwrap();
    assert_eq!(direct, chip_run.outputs);
    assert_eq!(
        chip_run.stats.makespan_cycles,
        eng.cycles(),
        "1-core chip session equals the plain engine session"
    );
}

#[test]
fn solver_graph_is_bit_identical_across_services_and_policies() {
    // The dependency-graph door with *stateful* jobs (rounds feed each
    // other through shared state): still bit-deterministic, because the
    // graph orders every access and reductions run in fixed panel order.
    let w = SolverLoopWorkload::demo();
    let mut baseline: Option<Vec<KernelReport>> = None;
    for sched in POLICIES {
        let mut svc = LacService::new(ChipConfig::new(4, LacConfig::default()));
        let first = svc.submit(w.graph().graph, sched).unwrap();
        let second = svc.submit(w.graph().graph, sched).unwrap();
        assert_eq!(first.outputs, second.outputs, "{sched:?}: warm rerun");
        assert_eq!(first.stats, second.stats, "{sched:?}: warm rerun stats");
        w.check_graph(&first.outputs).unwrap();
        match &baseline {
            None => baseline = Some(first.outputs),
            Some(b) => assert_eq!(b, &first.outputs, "{sched:?} changed solver results"),
        }
    }
}
