//! Determinism guarantees: the simulator is a pure function of
//! (configuration, program, operands). Running the same workload twice on
//! fresh engines — or through a multi-core `LacChip` under any scheduler
//! policy — must reproduce bit-identical functional outputs and identical
//! cycle counts. Placement and host-thread interleaving must never leak
//! into results.

use lap::lac_kernels::{
    registry, registry_chip_config, registry_sized, KernelReport, ProblemSize, Workload,
};
use lap::lac_sim::{ChipConfig, LacChip, LacConfig, LacEngine, Scheduler};

fn run_fresh(w: &dyn Workload) -> KernelReport {
    let mut eng = LacEngine::builder()
        .config(w.config(LacConfig::default()))
        .build();
    w.run(&mut eng)
        .unwrap_or_else(|e| panic!("{}: {e:?}", w.name()))
}

#[test]
fn every_workload_is_bit_deterministic_on_fresh_engines() {
    for w in registry() {
        let first = run_fresh(w.as_ref());
        let second = run_fresh(w.as_ref());
        // KernelReport's PartialEq covers the Details payload (f64 compare
        // is bitwise-exact here: equal bit patterns compare equal) and the
        // full ExecStats counter set.
        assert_eq!(first, second, "{}: reruns diverged", w.name());
        assert_eq!(first.stats.cycles, second.stats.cycles);
    }
}

#[test]
fn chip_runs_are_deterministic_under_every_policy() {
    let cfg = ChipConfig::new(3, registry_chip_config(LacConfig::default()));
    for sched in [Scheduler::Fifo, Scheduler::LeastLoaded] {
        let mut chip_a = LacChip::new(cfg);
        let mut chip_b = LacChip::new(cfg);
        let jobs = registry_sized(ProblemSize::Medium);
        let run_a = chip_a.run_queue(&jobs, sched).unwrap();
        let run_b = chip_b.run_queue(&jobs, sched).unwrap();
        assert_eq!(run_a.assignment, run_b.assignment, "{sched:?}: placement");
        assert_eq!(run_a.outputs, run_b.outputs, "{sched:?}: outputs");
        assert_eq!(run_a.stats, run_b.stats, "{sched:?}: chip stats");
    }
}

#[test]
fn scheduler_policy_changes_placement_but_not_results() {
    // The registry's cost hints differ wildly across kernels, so FIFO and
    // least-loaded place jobs differently — yet every per-job report,
    // including cycle counts, must be identical (cores are identical and
    // job state never leaks across a queue run's jobs on fresh shards).
    let cfg = ChipConfig::new(4, registry_chip_config(LacConfig::default()));
    let jobs = registry_sized(ProblemSize::Medium);
    let fifo = LacChip::new(cfg).run_queue(&jobs, Scheduler::Fifo).unwrap();
    let ll = LacChip::new(cfg)
        .run_queue(&jobs, Scheduler::LeastLoaded)
        .unwrap();
    assert_ne!(
        fifo.assignment, ll.assignment,
        "policies should disagree on this queue (costs are uneven)"
    );
    assert_eq!(fifo.outputs, ll.outputs, "results depend on placement");
    // Chip-level aggregates are placement-independent too (sums commute).
    assert_eq!(fifo.stats.aggregate, ll.stats.aggregate);
}

#[test]
fn engine_and_chip_shard_agree_per_workload() {
    // A 1-core chip is just an engine with a queue in front: identical
    // reports for the whole registry run back-to-back.
    let shared = registry_chip_config(LacConfig::default());
    let jobs = registry();
    let mut eng = LacEngine::builder().config(shared).build();
    let direct: Vec<KernelReport> = jobs
        .iter()
        .map(|w| {
            w.run(&mut eng)
                .unwrap_or_else(|e| panic!("{}: {e:?}", w.name()))
        })
        .collect();
    let chip_run = LacChip::new(ChipConfig::new(1, shared))
        .run_queue(&jobs, Scheduler::Fifo)
        .unwrap();
    assert_eq!(direct, chip_run.outputs);
    assert_eq!(
        chip_run.stats.makespan_cycles,
        eng.cycles(),
        "1-core chip session equals the plain engine session"
    );
}
