//! Property tests (vendored proptest) for the multi-tenant streaming
//! service: whatever the tenant mix, budgets, costs and core count —
//!
//! * the fair-share planner dispatches at most one job per core per wave,
//!   is work-conserving, and keeps weight-normalized per-tenant cost
//!   usage within one job of each other while both tenants have work
//!   (the convergence invariant of deficit scheduling);
//! * admission backpressure is a pure function of the enqueue/run
//!   history: the same submission sequence admits and rejects
//!   identically on two fresh services, and rounds are bit-identical;
//! * a single-tenant `FairShare` run degrades to `CriticalPath`'s output
//!   bits (and the planners agree pick-by-pick).

use lap::lac_sim::{
    plan_wave, plan_wave_tenanted, ChipConfig, JobGraph, LacChip, LacConfig, LacService,
    ProgramJob, Scheduler, TenantConfig,
};
use lap::lac_sim::{ExtOp, ProgramBuilder, Source};
use proptest::prelude::*;

/// One external load + one MAC + `extra` idle cycles, with a chosen
/// scheduler cost.
fn mac_job(extra: usize, cost: u64) -> ProgramJob {
    let cfg = LacConfig::default();
    let mut b = ProgramBuilder::new(cfg.nr);
    let t = b.push_step();
    b.ext(t, ExtOp::Load { col: 0, addr: 0 });
    b.pe_mut(t, 0, 0).reg_write = Some((0, Source::ColBus));
    let t = b.push_step();
    b.pe_mut(t, 0, 0).mac = Some((Source::Reg(0), Source::Reg(0)));
    b.idle(cfg.fpu.pipeline_depth + extra);
    let mut j = ProgramJob::new(b.build());
    j.cost = cost;
    j
}

/// A pseudo-random DAG over `costs` (same construction as
/// `tests/graph_props.rs`, without the execution log): job `j > 0` gets
/// up to two parents drawn from `seeds`.
fn random_dag(costs: &[u64], seeds: &[u64]) -> JobGraph<ProgramJob> {
    let mut graph = JobGraph::new();
    let mut ids = Vec::new();
    for (j, &cost) in costs.iter().enumerate() {
        let mut parents = Vec::new();
        if j > 0 {
            for take in 0..2usize {
                let seed = seeds[(2 * j + take) % seeds.len()];
                if !seed.is_multiple_of(3) {
                    parents.push(ids[(seed as usize) % j]);
                }
            }
        }
        ids.push(graph.add_after(mac_job(j % 8, cost), &parents));
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fair_share_planner_is_quantum_capped_and_work_conserving(
        costs in prop::collection::vec(1u64..200, 1..40),
        tenants in 1usize..=4,
        cores in 1usize..=6,
        usage_seed in prop::collection::vec(0u64..500, 4..5),
    ) {
        let ready: Vec<usize> = (0..costs.len()).collect();
        let tenant_of: Vec<usize> = (0..costs.len()).map(|j| j % tenants).collect();
        let usage: Vec<u64> = (0..tenants).map(|t| usage_seed[t % usage_seed.len()]).collect();
        let weights = vec![1u64; tenants];
        let buckets =
            plan_wave_tenanted(&ready, &costs, &costs, &tenant_of, &usage, &weights, cores);
        // At most one job per core per wave (the streaming quantum)…
        prop_assert!(buckets.iter().all(|b| b.len() <= 1));
        // …work-conserving: exactly min(ready, cores) jobs dispatch…
        let picked: Vec<usize> = buckets.iter().flatten().copied().collect();
        prop_assert_eq!(picked.len(), ready.len().min(cores));
        // …each a distinct ready job.
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), picked.len());
        prop_assert!(picked.iter().all(|j| ready.contains(j)));
    }

    #[test]
    fn fair_share_cost_shares_converge_across_tenants(
        per_tenant_costs in prop::collection::vec(
            prop::collection::vec(1u64..50, 4..16), 2..4),
        cores in 1usize..=4,
    ) {
        // Every tenant submits one flat graph (all jobs ready from wave
        // 0, equal weights). While two tenants both still have
        // undispatched jobs, deficit picking keeps their cumulative
        // dispatched costs within one job of each other — the
        // convergence invariant that makes shares track weights.
        let tenants = per_tenant_costs.len();
        let max_cost = *per_tenant_costs.iter().flatten().max().unwrap();
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(cores, LacConfig::default()));
        let ids: Vec<_> = (0..tenants)
            .map(|t| svc.add_tenant(TenantConfig::new(format!("t{t}"))))
            .collect();
        for (t, costs) in per_tenant_costs.iter().enumerate() {
            let graph: JobGraph<ProgramJob> =
                costs.iter().enumerate().map(|(i, &c)| mac_job(i % 8, c)).collect();
            svc.enqueue(ids[t], graph).unwrap();
        }
        let round = svc.run_admitted(Scheduler::FairShare).unwrap();

        // Reconstruct each tenant's cumulative dispatched cost per wave.
        let mut cum = vec![vec![0u64; round.waves + 1]; tenants];
        let mut last_wave = vec![0usize; tenants];
        for (t, g) in round.graphs.iter().enumerate() {
            for (j, &w) in g.wave_of.iter().enumerate() {
                cum[t][w + 1] += per_tenant_costs[t][j];
                last_wave[t] = last_wave[t].max(w);
            }
        }
        for series in &mut cum {
            for w in 0..round.waves {
                series[w + 1] += series[w];
            }
        }
        for a in 0..tenants {
            for b in a + 1..tenants {
                for w in 0..round.waves {
                    // Both tenants still have jobs after wave w?
                    if last_wave[a] > w && last_wave[b] > w {
                        let (ca, cb) = (cum[a][w + 1], cum[b][w + 1]);
                        prop_assert!(
                            ca.abs_diff(cb) <= max_cost,
                            "after wave {}: tenant {} at {} vs tenant {} at {} \
                             (max job cost {})",
                            w, a, ca, b, cb, max_cost
                        );
                    }
                }
            }
        }
        // Work conservation over flat graphs: wave w dispatches
        // min(cores, remaining) jobs — no core idles while admitted
        // graphs have ready jobs.
        let total: usize = per_tenant_costs.iter().map(|c| c.len()).sum();
        let mut per_wave = vec![0usize; round.waves];
        for g in &round.graphs {
            for &w in &g.wave_of {
                per_wave[w] += 1;
            }
        }
        let mut remaining = total;
        for (w, &count) in per_wave.iter().enumerate() {
            prop_assert_eq!(
                count, remaining.min(cores),
                "wave {} dispatched {} of {} remaining on {} cores",
                w, count, remaining, cores
            );
            remaining -= count;
        }
    }

    #[test]
    fn backpressure_is_deterministic_and_rounds_bit_identical(
        graph_costs in prop::collection::vec(
            prop::collection::vec(1u64..20, 1..6), 2..8),
        budget in 10u64..60,
        cores in 1usize..=3,
    ) {
        // The same enqueue/run sequence on two fresh services: admission
        // decisions, rejection metadata and round results must all agree
        // — backpressure is a function of history, not host timing.
        let run = |_: ()| {
            let mut svc: LacService<ProgramJob> =
                LacService::new(ChipConfig::new(cores, LacConfig::default()));
            let t = svc.add_tenant(
                TenantConfig::new("bounded").with_admission_budget(budget));
            let mut decisions = Vec::new();
            for costs in &graph_costs {
                let graph: JobGraph<ProgramJob> =
                    costs.iter().enumerate().map(|(i, &c)| mac_job(i, c)).collect();
                match svc.enqueue(t, graph) {
                    Ok(ticket) => decisions.push((true, ticket.seq, 0, 0)),
                    Err(r) => decisions.push((false, 0, r.graph_cost, r.inflight_cost)),
                }
            }
            let round = svc.run_admitted(Scheduler::FairShare).unwrap();
            let outputs: Vec<_> = round.graphs.iter().map(|g| g.outputs.clone()).collect();
            let session = svc.tenant_session(t).clone();
            (decisions, outputs, round.stats, round.waves, session)
        };
        let first = run(());
        let second = run(());
        prop_assert_eq!(&first.0, &second.0, "admission decisions diverged");
        prop_assert_eq!(&first.1, &second.1, "round outputs diverged");
        prop_assert_eq!(&first.2, &second.2, "round stats diverged");
        prop_assert_eq!(first.3, second.3, "wave structure diverged");
        prop_assert_eq!(&first.4, &second.4, "tenant meters diverged");
        // And the budget was honored: everything admitted fit.
        prop_assert!(first.4.inflight_cost == 0);
        let admitted_cost: u64 = graph_costs
            .iter()
            .zip(&first.0)
            .filter(|(_, d)| d.0)
            .map(|(costs, _)| costs.iter().map(|&c| c.max(1)).sum::<u64>())
            .sum();
        prop_assert_eq!(first.4.cost_completed, admitted_cost);
    }

    #[test]
    fn single_tenant_fair_share_degrades_to_critical_path_bits(
        costs in prop::collection::vec(1u64..100, 1..24),
        seeds in prop::collection::vec(any::<u64>(), 6..7),
        cores in 1usize..=4,
    ) {
        // Chip door: same DAG under FairShare and CriticalPath — output
        // bits identical (the degradation guarantee rides the
        // placement-independence invariant).
        let mut chip_fs = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
        let fs = chip_fs.run_graph(&random_dag(&costs, &seeds), Scheduler::FairShare).unwrap();
        let mut chip_cp = LacChip::new(ChipConfig::new(cores, LacConfig::default()));
        let cp = chip_cp.run_graph(&random_dag(&costs, &seeds), Scheduler::CriticalPath).unwrap();
        prop_assert_eq!(&fs.outputs, &cp.outputs);
        prop_assert_eq!(fs.stats.aggregate, cp.stats.aggregate, "same work either way");

        // Service door with one registered tenant agrees bit-for-bit too.
        let mut svc: LacService<ProgramJob> =
            LacService::new(ChipConfig::new(cores, LacConfig::default()));
        let t = svc.add_tenant(TenantConfig::new("only"));
        svc.enqueue(t, random_dag(&costs, &seeds)).unwrap();
        let round = svc.run_admitted(Scheduler::FairShare).unwrap();
        prop_assert_eq!(&round.graphs[0].outputs, &fs.outputs);

        // Planner-level agreement on the first quantum: FairShare's picks
        // are CriticalPath's highest-priority jobs, one per core.
        let ready: Vec<usize> = (0..costs.len().min(cores)).collect();
        let tenant_of = vec![0usize; costs.len()];
        let fair =
            plan_wave_tenanted(&ready, &costs, &costs, &tenant_of, &[0], &[1], cores);
        let cp_wave = plan_wave(Scheduler::CriticalPath, &ready, &costs, &costs, cores);
        let fair_jobs: Vec<usize> = fair.iter().flatten().copied().collect();
        let mut cp_jobs: Vec<usize> = cp_wave.iter().flatten().copied().collect();
        cp_jobs.sort_unstable();
        let mut fair_sorted = fair_jobs.clone();
        fair_sorted.sort_unstable();
        prop_assert_eq!(fair_sorted, cp_jobs, "same quantum, same job set");
    }
}
