//! Property tests (vendored proptest) for the open-loop traffic layer:
//! whatever the seeds, process shapes and recorded samples —
//!
//! * histogram percentiles are monotone (p50 ≤ p99 ≤ p999), every
//!   reported percentile is an upper bound within the 12.5 % bucket
//!   granularity, and min ≤ p50, p999 ≤ max;
//! * histogram merge is exact (equals recording the union directly),
//!   commutative and associative;
//! * histograms are bit-deterministic: the same samples in any order
//!   produce identical state, and whole open-loop replays produce
//!   identical per-tenant histograms across reruns — with identical
//!   output bits across scheduler policies;
//! * arrival traces are bit-identical for a fixed seed and respect the
//!   configured mean rate within tolerance.

use lap::lac_sim::{
    ChipConfig, JobGraph, LacConfig, LacService, ProgramBuilder, ProgramJob, Scheduler,
    TenantConfig,
};
use lap::lac_traffic::{
    run_open_loop, Arrival, ArrivalProcess, ArrivalTrace, LatencyHistogram, OpenLoopConfig,
};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// A tiny two-job chain whose shape is salted by the arrival identity.
fn request(a: &Arrival) -> JobGraph<ProgramJob> {
    let job = |extra: usize, cost: u64| {
        let cfg = LacConfig::default();
        let mut b = ProgramBuilder::new(cfg.nr);
        b.idle(4 + extra);
        let mut j = ProgramJob::new(b.build());
        j.cost = cost;
        j
    };
    let mut g = JobGraph::new();
    let first = g.add(job((a.index as usize) % 3, 30 + 20 * a.tenant as u64));
    g.add_after(job((a.tenant + 1) % 3, 25), &[first]);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn percentiles_are_monotone_and_bound_the_samples(
        samples in prop::collection::vec(0u64..2_000_000, 1..400),
    ) {
        let h = hist_of(&samples);
        let (p50, p99, p999) = (h.p50(), h.p99(), h.p999());
        prop_assert!(p50 <= p99 && p99 <= p999, "p50 {p50} p99 {p99} p999 {p999}");
        prop_assert!(h.min() <= p50);
        prop_assert!(p999 <= h.max());

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (q, got) in [(0.50, p50), (0.99, p99), (0.999, p999)] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            // Upper bound within the 1/8 bucket width (+1 for unit buckets).
            prop_assert!(got >= exact, "q={q}: {got} below exact {exact}");
            prop_assert!(got <= exact + exact / 8 + 1, "q={q}: {got} too far above {exact}");
        }
    }

    #[test]
    fn merge_is_exact_commutative_and_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
        c in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // Exact: merging equals recording the union directly.
        let union: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let mut merged = ha.clone();
        merged.merge(&hb);
        merged.merge(&hc);
        prop_assert_eq!(&merged, &hist_of(&union));

        // Commutative + associative: any merge tree lands on the same bits.
        let mut cba = hc.clone();
        cba.merge(&hb);
        cba.merge(&ha);
        prop_assert_eq!(&merged, &cba);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&merged, &a_bc);
    }

    #[test]
    fn histograms_are_order_independent_and_deterministic(
        mut samples in prop::collection::vec(0u64..10_000_000, 1..300),
    ) {
        let forward = hist_of(&samples);
        prop_assert_eq!(&forward, &hist_of(&samples));
        samples.reverse();
        prop_assert_eq!(&forward, &hist_of(&samples));
    }

    #[test]
    fn traces_are_bit_identical_for_a_seed(
        seed in any::<u64>(),
        mean_gap in 2.0f64..500.0,
        horizon in 1_000u64..60_000,
    ) {
        let procs = [
            ArrivalProcess::Poisson { mean_gap },
            ArrivalProcess::OnOff {
                mean_gap_on: 3.0,
                mean_burst: 5.0,
                mean_gap_off: mean_gap * 4.0,
            },
            ArrivalProcess::Diurnal { mean_gap, period: horizon / 2 + 1, depth: 0.7 },
        ];
        let a = ArrivalTrace::generate(seed, horizon, &procs);
        prop_assert_eq!(&a, &ArrivalTrace::generate(seed, horizon, &procs));
        // And a different seed moves at least something (overwhelmingly
        // likely at these horizons; the exceptional empty-trace draw is
        // excluded).
        if !a.is_empty() {
            let b = ArrivalTrace::generate(seed ^ 0x5bd1_e995, horizon, &procs);
            prop_assert!(a != b || b.is_empty());
        }
    }

    #[test]
    fn poisson_traces_respect_the_mean_rate(
        seed in any::<u64>(),
        mean_gap in 20.0f64..200.0,
    ) {
        // Long horizon so the law of large numbers has room: ~5000 gaps.
        let horizon = (mean_gap * 5_000.0) as u64;
        let trace = ArrivalTrace::generate(seed, horizon, &[ArrivalProcess::Poisson { mean_gap }]);
        let expected = horizon as f64 / mean_gap;
        let got = trace.len() as f64;
        prop_assert!(
            (got - expected).abs() < 0.10 * expected,
            "seed {seed}: {got} arrivals vs ~{expected} expected"
        );
    }
}

/// Open-loop replays are bit-deterministic across reruns, and their
/// output bits are identical across scheduler policies (only the
/// latencies move). Driven over a fixed grid rather than proptest cases:
/// each replay runs a real service.
#[test]
fn open_loop_replays_are_deterministic_across_policies() {
    for seed in [1u64, 77, 901] {
        let trace = ArrivalTrace::generate(
            seed,
            12_000,
            &[
                ArrivalProcess::Poisson { mean_gap: 300.0 },
                ArrivalProcess::OnOff {
                    mean_gap_on: 20.0,
                    mean_burst: 4.0,
                    mean_gap_off: 1_500.0,
                },
            ],
        );
        let replay = |sched: Scheduler, slo_boost: bool| {
            let mut svc: LacService<ProgramJob> =
                LacService::new(ChipConfig::new(2, LacConfig::default()));
            let ids = vec![
                svc.add_tenant(TenantConfig::new("deadline").with_deadline(1_500)),
                svc.add_tenant(TenantConfig::new("batch")),
            ];
            run_open_loop(
                &mut svc,
                &trace,
                &ids,
                request,
                OpenLoopConfig {
                    sched,
                    slo_boost,
                    ..OpenLoopConfig::default()
                },
            )
            .unwrap()
        };

        let base = replay(Scheduler::FairShare, false);
        assert_eq!(base.completed.len(), trace.len());
        // Rerun: the whole report — histograms included — is bit-identical.
        assert_eq!(
            base,
            replay(Scheduler::FairShare, false),
            "seed {seed}: rerun diverged"
        );

        // Across policies and SLO boosting, output bits never move.
        let bits = |r: &lap::lac_traffic::OpenLoopReport<lap::lac_sim::ExecStats>| {
            let mut v: Vec<_> = r
                .completed
                .iter()
                .map(|c| (c.arrival, c.outputs.clone()))
                .collect();
            v.sort_by_key(|(a, _)| (a.tenant, a.index));
            v
        };
        for (sched, slo) in [
            (Scheduler::FairShare, true),
            (Scheduler::CriticalPath, false),
            (Scheduler::Fifo, false),
            (Scheduler::LeastLoaded, false),
        ] {
            let other = replay(sched, slo);
            assert_eq!(
                bits(&base),
                bits(&other),
                "seed {seed}: outputs diverged under {sched:?} (slo={slo})"
            );
        }
    }
}
