//! End-to-end integration tests spanning the whole stack: reference
//! substrate → workload generators → `LacEngine` sessions on the
//! cycle-accurate simulator → energy model.

use lap::lac_kernels::{
    BlockedCholWorkload, BlockedTrsmWorkload, Details, Fft64Workload, GemmWorkload, LuOptions,
    LuPanelWorkload, Workload,
};
use lap::lac_power::{ChipEnergyModel, EnergyModel, SessionEnergy};
use lap::lac_sim::{ChipConfig, LacChip, LacConfig, LacEngine, Scheduler};
use lap::linalg_ref::{
    cholesky, fft_radix4, gemm, lu_partial_pivot, max_abs_diff, trsm, Complex, Matrix, Side,
    Triangle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine() -> LacEngine {
    LacEngine::builder().config(LacConfig::default()).build()
}

#[test]
fn linear_system_via_lu_on_the_accelerator() {
    // Factor a 32×4 panel on the LAC and check it against the reference
    // factorization bit-for-bit in pivots and to 1e-9 in values.
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::random(32, 4, &mut rng);
    let mut eng = engine();
    let w = LuPanelWorkload::new(a.clone(), LuOptions::default());
    let report = w.run(&mut eng).unwrap();
    let Details::Lu { factors, pivots } = &report.details else {
        panic!("lu reports factors")
    };
    let reference = lu_partial_pivot(&a).unwrap();
    assert_eq!(*pivots, reference.pivots);
    assert!(max_abs_diff(factors, &reference.factors) < 1e-9);
    assert!(report.stats.cycles > 0 && report.stats.sfu_ops == 4);
}

#[test]
fn gemm_chain_matches_reference_composition() {
    // (A·B)·C on the accelerator equals the reference composition — run
    // back-to-back on ONE engine session, which meters both.
    let mut rng = StdRng::seed_from_u64(2);
    let a = Matrix::random(16, 16, &mut rng);
    let b = Matrix::random(16, 16, &mut rng);
    let c = Matrix::random(16, 16, &mut rng);

    let mut eng = engine();
    let mut run = |x: &Matrix, y: &Matrix| {
        let w = GemmWorkload::new(x.clone(), y.clone(), Matrix::zeros(16, 16));
        let report = w.run(&mut eng).unwrap();
        let Details::Gemm { c } = report.details else {
            panic!("gemm reports C")
        };
        c
    };
    let ab = run(&a, &b);
    let abc = run(&ab, &c);
    assert_eq!(
        eng.workloads_run(),
        2,
        "one session metered both chained GEMMs"
    );
    // Session accumulation across back-to-back workloads: both runs were
    // identical in shape, so every session counter is exactly double one
    // run's (cycles, MACs, and external traffic alike).
    let s = eng.session_stats();
    assert_eq!(s.cycles % 2, 0);
    assert_eq!(s.mac_ops, 2 * (16 * 16 * 16));
    assert_eq!(s.ext_reads % 2, 0);
    assert_eq!(eng.flops(), 2 * s.mac_ops + s.sfu_ops);

    let mut expect_ab = Matrix::zeros(16, 16);
    gemm(&a, &b, &mut expect_ab);
    let mut expect = Matrix::zeros(16, 16);
    gemm(&expect_ab, &c, &mut expect);
    assert!(max_abs_diff(&abc, &expect) < 1e-10);
}

#[test]
fn cholesky_then_trsm_solves_spd_system() {
    // A = L·Lᵀ on the LAC, then L X = B on the LAC — the same session
    // serves both workloads with state reuse.
    let mut rng = StdRng::seed_from_u64(3);
    let a = Matrix::random_spd(16, &mut rng);
    let b = Matrix::random(16, 8, &mut rng);

    let mut eng = engine();
    let chol_w = BlockedCholWorkload::new(a.clone());
    let chol_rep = chol_w.run(&mut eng).unwrap();
    let Details::Cholesky { l } = &chol_rep.details else {
        panic!("chol reports L")
    };
    assert!(max_abs_diff(l, &cholesky(&a).unwrap()) < 1e-8);

    let trsm_w = BlockedTrsmWorkload::new(l.clone(), b.clone());
    let trsm_rep = trsm_w.run(&mut eng).unwrap();
    let Details::Trsm { x } = &trsm_rep.details else {
        panic!("trsm reports X")
    };
    let mut expect = b.clone();
    trsm(Side::Left, Triangle::Lower, l, &mut expect);
    assert!(max_abs_diff(x, &expect) < 1e-8);

    // Session accounting covers both factor and solve, counter for counter.
    assert_eq!(eng.cycles(), chol_rep.stats.cycles + trsm_rep.stats.cycles);
    let mut expect_session = chol_rep.stats;
    expect_session.merge(&trsm_rep.stats);
    assert_eq!(
        *eng.session_stats(),
        expect_session,
        "session is exactly the sum of its workloads"
    );
    assert_eq!(eng.workloads_run(), 2);
}

#[test]
fn fft_parseval_on_the_core() {
    // Energy conservation: ‖X‖² = n·‖x‖² for the simulated transform.
    let x: Vec<Complex> = (0..64)
        .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
        .collect();
    let w = Fft64Workload::new(x.clone());
    let mut eng = LacEngine::builder()
        .config(w.config(LacConfig {
            sram_a_words: 64,
            sram_b_words: 64,
            ..Default::default()
        }))
        .build();
    let report = w.run(&mut eng).unwrap();
    let Details::Fft { spectrum } = &report.details else {
        panic!("fft reports spectrum")
    };
    let time_energy: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
    let freq_energy: f64 = spectrum.iter().map(|v| v.abs() * v.abs()).sum();
    assert!((freq_energy / (64.0 * time_energy) - 1.0).abs() < 1e-12);

    // And it agrees with the reference transform.
    let mut reference = x;
    fft_radix4(&mut reference);
    for (got, want) in spectrum.iter().zip(&reference) {
        assert!((*got - *want).abs() < 1e-10);
    }
}

#[test]
fn energy_model_scales_with_work() {
    // Twice the GEMM work costs roughly twice the energy — read through
    // the session energy summary.
    let energy_of = |n: usize| {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::random(16, 16, &mut rng);
        let b = Matrix::random(16, n, &mut rng);
        let mut eng = engine();
        GemmWorkload::new(a, b, Matrix::zeros(16, n))
            .run(&mut eng)
            .unwrap();
        eng.energy_summary(&EnergyModel::lac_default()).energy_nj
    };
    let e1 = energy_of(32);
    let e2 = energy_of(64);
    let ratio = e2 / e1;
    assert!((1.7..2.3).contains(&ratio), "energy ratio {ratio}");
}

#[test]
fn multi_core_chip_splits_gemm_by_row_panels() {
    // Chapter 4's work distribution, through the chip layer: each core owns
    // a row panel of C with its own bank of on-chip memory; the scheduler
    // dispatches the panel queue and the makespan is the slowest shard.
    let s = 4;
    let (mc, kc, n) = (16, 16, 16); // per-core panel: C is (s·mc) × n
    let mut rng = StdRng::seed_from_u64(9);
    let a = Matrix::random(s * mc, kc, &mut rng);
    let b = Matrix::random(kc, n, &mut rng);
    let c0 = Matrix::random(s * mc, n, &mut rng);

    let jobs: Vec<Box<dyn Workload>> = (0..s)
        .map(|core| {
            Box::new(GemmWorkload::new(
                a.block(core * mc, 0, mc, kc),
                b.clone(),
                c0.block(core * mc, 0, mc, n),
            )) as Box<dyn Workload>
        })
        .collect();

    let mut chip = LacChip::new(ChipConfig::new(s, LacConfig::default()));
    let graph: lap::lac_sim::JobGraph<Box<dyn Workload>> = jobs.into_iter().collect();
    let run = chip.run_graph(&graph, Scheduler::LeastLoaded).unwrap();
    assert_eq!(run.stats.jobs(), s as u64);
    assert_eq!(
        run.stats.jobs_per_core,
        vec![1; s],
        "equal jobs, equal cores"
    );
    assert!(run.stats.makespan_cycles > 0);
    assert!(
        (run.stats.speedup() - s as f64).abs() < 1e-9,
        "panels are independent"
    );
    assert!(run.stats.utilization(LacConfig::default().nr) > 0.4);

    // Reassemble C from the per-job reports (submission order) and verify
    // against the reference full-size GEMM.
    let mut got = Matrix::zeros(s * mc, n);
    for (core, report) in run.outputs.iter().enumerate() {
        assert!(report.utilization > 0.4);
        let Details::Gemm { c } = &report.details else {
            panic!("gemm reports C")
        };
        got.set_block(core * mc, 0, c);
    }
    let mut expect = c0;
    gemm(&a, &b, &mut expect);
    assert!(max_abs_diff(&got, &expect) < 1e-10);

    // The chip energy summary prices the run and decomposes exactly.
    let e = ChipEnergyModel::lap_default().summarize(&run.stats);
    assert_eq!(e.per_core.len(), s);
    assert!(e.total_nj > 0.0);
    assert!((e.total_nj - e.cores_nj - e.uncore_nj).abs() < 1e-9);
}

#[test]
fn bandwidth_cap_respected_by_all_kernels() {
    // The natural cap of nr words/cycle (one per column bus) must never be
    // exceeded — run a GEMM session with the cap enforced.
    let cfg = LacConfig {
        ext_words_per_cycle: Some(4),
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(5);
    let a = Matrix::random(16, 32, &mut rng);
    let b = Matrix::random(32, 16, &mut rng);
    let mut eng = LacEngine::builder().config(cfg).build();
    GemmWorkload::new(a, b, Matrix::zeros(16, 16))
        .run(&mut eng)
        .unwrap();
    assert!(eng.ext_words_per_cycle() <= 4.0);
}
