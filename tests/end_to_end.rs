//! End-to-end integration tests spanning the whole stack: reference
//! substrate → kernel generators → cycle-accurate simulator → energy model.

use lap::lac_kernels::{
    lu_panel_matrix, run_blocked_cholesky, run_blocked_trsm, run_fft64, run_gemm,
    GemmDataLayout, GemmParams, LuOptions,
};
use lap::lac_power::EnergyModel;
use lap::lac_sim::{ExternalMem, Lac, LacConfig};
use lap::linalg_ref::{
    cholesky, fft_radix4, gemm, lu_partial_pivot, max_abs_diff, trsm, Complex, Matrix, Side,
    Triangle,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn linear_system_via_lu_on_the_accelerator() {
    // Factor a 32×4 panel on the LAC and check it against the reference
    // factorization bit-for-bit in pivots and to 1e-9 in values.
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::random(32, 4, &mut rng);
    let mut lac = Lac::new(LacConfig::default());
    let (packed, pivots, stats) =
        lu_panel_matrix(&mut lac, &a, &LuOptions::default()).unwrap();
    let reference = lu_partial_pivot(&a).unwrap();
    assert_eq!(pivots, reference.pivots);
    assert!(max_abs_diff(&packed, &reference.factors) < 1e-9);
    assert!(stats.cycles > 0 && stats.sfu_ops == 4);
}

#[test]
fn gemm_chain_matches_reference_composition() {
    // (A·B)·C on the accelerator equals the reference composition.
    let mut rng = StdRng::seed_from_u64(2);
    let a = Matrix::random(16, 16, &mut rng);
    let b = Matrix::random(16, 16, &mut rng);
    let c = Matrix::random(16, 16, &mut rng);

    let run = |x: &Matrix, y: &Matrix| {
        let lay = GemmDataLayout::new(16, 16, 16);
        let zero = Matrix::zeros(16, 16);
        let mut mem = ExternalMem::from_vec(lay.pack(x, y, &zero));
        let mut lac = Lac::new(LacConfig::default());
        run_gemm(&mut lac, &mut mem, &lay, &GemmParams::new(16, 16, 16)).unwrap();
        lay.unpack_c(mem.as_slice())
    };
    let ab = run(&a, &b);
    let abc = run(&ab, &c);

    let mut expect_ab = Matrix::zeros(16, 16);
    gemm(&a, &b, &mut expect_ab);
    let mut expect = Matrix::zeros(16, 16);
    gemm(&expect_ab, &c, &mut expect);
    assert!(max_abs_diff(&abc, &expect) < 1e-10);
}

#[test]
fn cholesky_then_trsm_solves_spd_system() {
    // A = L·Lᵀ on the LAC, then L X = B on the LAC: X should satisfy
    // Lᵀ-solve against the reference.
    let mut rng = StdRng::seed_from_u64(3);
    let a = Matrix::random_spd(16, &mut rng);
    let b = Matrix::random(16, 8, &mut rng);

    let mut lac = Lac::new(LacConfig::default());
    let (l, _) = run_blocked_cholesky(&mut lac, &a).unwrap();
    assert!(max_abs_diff(&l, &cholesky(&a).unwrap()) < 1e-8);

    let (y, _) = run_blocked_trsm(&mut lac, &l, &b).unwrap();
    let mut expect = b.clone();
    trsm(Side::Left, Triangle::Lower, &l, &mut expect);
    assert!(max_abs_diff(&y, &expect) < 1e-8);
}

#[test]
fn fft_parseval_on_the_core() {
    // Energy conservation: ‖X‖² = n·‖x‖² for the simulated transform.
    let x: Vec<Complex> =
        (0..64).map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos())).collect();
    let mut mem = vec![0.0; 128];
    for (q, v) in x.iter().enumerate() {
        mem[2 * q] = v.re;
        mem[2 * q + 1] = v.im;
    }
    let cfg = LacConfig { sram_a_words: 64, sram_b_words: 64, ..Default::default() };
    let mut lac = Lac::new(cfg);
    let mut emem = ExternalMem::from_vec(mem);
    run_fft64(&mut lac, &mut emem).unwrap();
    let time_energy: f64 = x.iter().map(|v| v.abs() * v.abs()).sum();
    let freq_energy: f64 = (0..64)
        .map(|q| {
            let v = Complex::new(emem.read(2 * q), emem.read(2 * q + 1));
            v.abs() * v.abs()
        })
        .sum();
    assert!((freq_energy / (64.0 * time_energy) - 1.0).abs() < 1e-12);

    // And it agrees with the reference transform.
    let mut reference = x;
    fft_radix4(&mut reference);
    for (q, r) in reference.iter().enumerate() {
        assert!((Complex::new(emem.read(2 * q), emem.read(2 * q + 1)) - *r).abs() < 1e-10);
    }
}

#[test]
fn energy_model_scales_with_work() {
    // Twice the GEMM work costs roughly twice the energy.
    let energy_of = |n: usize| {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::random(16, 16, &mut rng);
        let b = Matrix::random(16, n, &mut rng);
        let c = Matrix::zeros(16, n);
        let lay = GemmDataLayout::new(16, 16, n);
        let mut mem = ExternalMem::from_vec(lay.pack(&a, &b, &c));
        let mut lac = Lac::new(LacConfig::default());
        let rep = run_gemm(&mut lac, &mut mem, &lay, &GemmParams::new(16, 16, n)).unwrap();
        EnergyModel::lac_default().energy_nj(&rep.stats)
    };
    let e1 = energy_of(32);
    let e2 = energy_of(64);
    let ratio = e2 / e1;
    assert!((1.7..2.3).contains(&ratio), "energy ratio {ratio}");
}

#[test]
fn multi_core_lap_splits_gemm_by_row_panels() {
    // Chapter 4's work distribution: each core owns a row panel of C with
    // its own bank of on-chip memory; the makespan is the slowest core.
    use lap::lac_sim::Lap;
    let s = 4;
    let (mc, kc, n) = (16, 16, 16); // per-core panel: C is (s·mc) × n
    let mut rng = StdRng::seed_from_u64(9);
    let a = Matrix::random(s * mc, kc, &mut rng);
    let b = Matrix::random(kc, n, &mut rng);
    let c0 = Matrix::random(s * mc, n, &mut rng);

    // Build one program + memory bank per core over its A/C row panel.
    let lay = GemmDataLayout::new(mc, kc, n);
    let mut work = Vec::new();
    for core in 0..s {
        let a_panel = a.block(core * mc, 0, mc, kc);
        let c_panel = c0.block(core * mc, 0, mc, n);
        // Generate the program by running a scratch core, then reuse the
        // packed image with the real LAP (programs are pure data).
        let mut probe = Lac::new(LacConfig::default());
        let mut mem = ExternalMem::from_vec(lay.pack(&a_panel, &b, &c_panel));
        run_gemm(&mut probe, &mut mem, &lay, &GemmParams::new(mc, kc, n)).unwrap();
        // For the LAP run we need Program objects; regenerate via the
        // kernel API against fresh state.
        let fresh = ExternalMem::from_vec(lay.pack(&a_panel, &b, &c_panel));
        work.push(fresh);
    }
    // Execute on the LAP: each core runs the identical schedule on its bank.
    let mut lap_chip = Lap::new(LacConfig::default(), s);
    let mut results = Vec::new();
    for (core, mem) in work.into_iter().enumerate() {
        let mut mem = mem;
        let rep = run_gemm(
            lap_chip.core_mut(core),
            &mut mem,
            &lay,
            &GemmParams::new(mc, kc, n),
        )
        .unwrap();
        assert!(rep.utilization > 0.4);
        results.push(lay.unpack_c(mem.as_slice()));
    }
    // Assemble and verify against the reference full-size GEMM.
    let mut got = Matrix::zeros(s * mc, n);
    for (core, panel) in results.iter().enumerate() {
        got.set_block(core * mc, 0, panel);
    }
    let mut expect = c0;
    gemm(&a, &b, &mut expect);
    assert!(max_abs_diff(&got, &expect) < 1e-10);
}

#[test]
fn bandwidth_cap_respected_by_all_kernels() {
    // The natural cap of nr words/cycle (one per column bus) must never be
    // exceeded — run a GEMM with the cap enforced.
    let cfg = LacConfig { ext_words_per_cycle: Some(4), ..Default::default() };
    let mut rng = StdRng::seed_from_u64(5);
    let a = Matrix::random(16, 32, &mut rng);
    let b = Matrix::random(32, 16, &mut rng);
    let c = Matrix::zeros(16, 16);
    let lay = GemmDataLayout::new(16, 32, 16);
    let mut mem = ExternalMem::from_vec(lay.pack(&a, &b, &c));
    let mut lac = Lac::new(cfg);
    let rep = run_gemm(&mut lac, &mut mem, &lay, &GemmParams::new(16, 32, 16)).unwrap();
    assert!(rep.stats.ext_words_per_cycle() <= 4.0);
}
