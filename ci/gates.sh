#!/usr/bin/env bash
# Repo hygiene gates, runnable locally (`bash ci/gates.sh`) and in CI's
# lint job. Each gate greps for a pattern that is only permitted in named
# places; any other occurrence is a regression.
#
# (The former gates on `run_queue` call sites and `allow(deprecated)`
# retired together with the deprecated pre-engine wrappers themselves —
# the symbols no longer exist, so the compiler is the gate now.)
set -u
cd "$(dirname "$0")/.."

fail=0

# Gate 1: deprecation cycles are over. The pre-engine free functions and
# the flat run_queue door were removed after a full deprecation cycle;
# nothing in the tree may reintroduce #[deprecated] shims (deprecate in a
# PR that also migrates the call sites, then delete — don't accumulate).
hits=$(grep -rnE '#\[deprecated|allow\([^)]*deprecated' --include='*.rs' . \
  | grep -v '^\./target/' \
  | grep -v '^\./vendor/' || true)
if [ -n "$hits" ]; then
  echo "deprecated-API shims or call sites reintroduced:"
  echo "$hits"
  fail=1
fi

# Gate 2: the rustdoc pass is load-bearing. lac-sim and lac-kernels build
# under #![warn(missing_docs)] (promoted to errors by CI's -D warnings);
# silencing the lint instead of writing the docs is a regression.
hits=$(grep -rnE 'allow\([^)]*missing_docs' --include='*.rs' ./crates ./src ./tests ./examples \
  2>/dev/null || true)
if [ -n "$hits" ]; then
  echo "missing_docs lint silenced instead of documented:"
  echo "$hits"
  fail=1
fi

# Gate 3: Source decoding is confined to the two execution backends.
# Only the interpreter (core.rs) and the compiler (compile.rs) may match
# on `Source` variants; a decode anywhere else would be a third place the
# operand semantics live, free to drift from the differential suite's
# bit-identity contract.
hits=$(grep -rnE 'Source::[A-Za-z_]+(\([^)]*\))?[[:space:]]*=>' --include='*.rs' \
  ./crates ./src ./tests ./examples 2>/dev/null \
  | grep -v 'crates/lac-sim/src/core\.rs\|crates/lac-sim/src/compile\.rs' || true)
if [ -n "$hits" ]; then
  echo "Source decoded outside the execution backends (core.rs / compile.rs):"
  echo "$hits"
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "all grep gates passed"
fi
exit "$fail"
