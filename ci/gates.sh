#!/usr/bin/env bash
# Repo hygiene gates, runnable locally (`bash ci/gates.sh`) and in CI's
# lint job. Each gate greps for a pattern that is only permitted in the
# named wrapper modules; any other occurrence is a regression.
set -u
cd "$(dirname "$0")/.."

fail=0

# Gate 1: deprecated-API call sites. The pre-engine free functions and the
# flat run_queue door are #[deprecated]; with -D warnings any call site
# needs allow(deprecated), which is only permitted in the two files
# hosting the shims: lac-kernels' lib.rs (re-exports of the free
# functions) and lac-sim's chip.rs (run_queue and its compat tests).
hits=$(grep -rnE "allow\([^)]*deprecated" --include='*.rs' . \
  | grep -v '^\./crates/lac-kernels/src/lib\.rs' \
  | grep -v '^\./crates/lac-sim/src/chip\.rs' \
  | grep -v '^\./target/' || true)
if [ -n "$hits" ]; then
  echo "new #[deprecated] call sites outside the wrapper modules:"
  echo "$hits"
  fail=1
fi

# Gate 2: flat-queue call sites. run_queue is a compat wrapper over a
# single-wave JobGraph; new code must submit graphs (LacChip::run_graph /
# LacService). Any mention outside the wrapper module (which hosts its
# tests too) is a regression.
hits=$(grep -rn "run_queue" --include='*.rs' . \
  | grep -v '^\./crates/lac-sim/src/chip\.rs' \
  | grep -v '^\./target/' || true)
if [ -n "$hits" ]; then
  echo "run_queue call sites outside the compat wrapper:"
  echo "$hits"
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "all grep gates passed"
fi
exit "$fail"
